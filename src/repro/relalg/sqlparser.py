"""Tokenizer and recursive-descent parser for the SQL subset.

Supported statements::

    CREATE TABLE [IF NOT EXISTS] name (col TYPE [PRIMARY KEY | NOT NULL], …)
    CREATE INDEX name ON table (column) [ORDERED]
    DROP TABLE [IF EXISTS] name
    INSERT INTO table [(col, …)] VALUES (expr, …) [, (expr, …) …]
    DELETE FROM table [WHERE expr]
    BEGIN [TRANSACTION | WORK]
    COMMIT [TRANSACTION | WORK]
    ROLLBACK [TRANSACTION | WORK]
    SELECT [DISTINCT] items FROM table [alias] [, table [alias] …]
        [JOIN table [alias] ON expr …]
        [WHERE expr] [GROUP BY expr, …] [HAVING expr]
        [ORDER BY expr [ASC|DESC], …] [LIMIT n [OFFSET m]]

Expressions support literals, ``?`` placeholders, qualified column references,
arithmetic, comparisons, ``AND``/``OR``/``NOT``, ``IS [NOT] NULL``,
``[NOT] IN (…)``, ``expr BETWEEN lo AND hi`` (desugared at parse time to
``expr >= lo AND expr <= hi``, so it is sargable for range probes), function
calls (including ``COUNT(*)`` and ``COUNT(DISTINCT col)``) and parenthesised
scalar subqueries.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from repro.relalg.errors import SqlSyntaxError
from repro.relalg.sqlast import (
    BeginStatement,
    BinaryOperation,
    BinaryOperator,
    ColumnDef,
    ColumnRef,
    CommitStatement,
    CreateIndexStatement,
    CreateTableStatement,
    DeleteStatement,
    DropTableStatement,
    FunctionExpr,
    InList,
    InsertStatement,
    IsNull,
    Join,
    Literal,
    OrderItem,
    Placeholder,
    RollbackStatement,
    ScalarSubquery,
    SelectItem,
    SelectStatement,
    SqlExpr,
    Star,
    Statement,
    TableRef,
    UnaryOperation,
)

__all__ = ["tokenize_sql", "SqlParser", "parse_sql"]


# --------------------------------------------------------------------------- #
# tokenizer
# --------------------------------------------------------------------------- #

_KEYWORDS = {
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "LIMIT",
    "OFFSET", "ASC", "DESC", "AND", "OR", "NOT", "IN", "IS", "NULL", "AS",
    "DISTINCT", "BETWEEN", "JOIN", "INNER", "LEFT", "ON", "CREATE", "TABLE",
    "INDEX", "ORDERED", "DROP", "INSERT", "INTO", "VALUES", "DELETE",
    "PRIMARY", "KEY", "IF", "EXISTS", "TRUE", "FALSE", "BEGIN", "COMMIT",
    "ROLLBACK", "TRANSACTION", "WORK",
}

_TWO_CHAR = {"<=", ">=", "<>", "!="}
_SINGLE_CHAR = set("()+-*/,.<>=?;")


@dataclass(frozen=True)
class SqlToken:
    kind: str  # KEYWORD | IDENT | NUMBER | STRING | OP | EOF
    text: str
    value: Any = None
    position: int = 0


def tokenize_sql(sql: str) -> List[SqlToken]:
    """Tokenise one SQL statement."""
    tokens: List[SqlToken] = []
    pos = 0
    length = len(sql)
    while pos < length:
        char = sql[pos]
        if char.isspace():
            pos += 1
            continue
        if sql.startswith("--", pos):
            newline = sql.find("\n", pos)
            pos = length if newline == -1 else newline + 1
            continue
        if char.isalpha() or char == "_":
            start = pos
            while pos < length and (sql[pos].isalnum() or sql[pos] == "_"):
                pos += 1
            text = sql[start:pos]
            upper = text.upper()
            if upper in _KEYWORDS:
                tokens.append(SqlToken("KEYWORD", upper, position=start))
            else:
                tokens.append(SqlToken("IDENT", text, position=start))
            continue
        if char.isdigit() or (
            char == "." and pos + 1 < length and sql[pos + 1].isdigit()
        ):
            start = pos
            seen_dot = False
            seen_exp = False
            while pos < length:
                c = sql[pos]
                if c.isdigit():
                    pos += 1
                elif c == "." and not seen_dot and not seen_exp:
                    seen_dot = True
                    pos += 1
                elif c in "eE" and not seen_exp and pos + 1 < length and (
                    sql[pos + 1].isdigit() or sql[pos + 1] in "+-"
                ):
                    seen_exp = True
                    pos += 2 if sql[pos + 1] in "+-" else 1
                else:
                    break
            text = sql[start:pos]
            value: Any = float(text) if (seen_dot or seen_exp) else int(text)
            tokens.append(SqlToken("NUMBER", text, value=value, position=start))
            continue
        if char == "'":
            start = pos
            pos += 1
            chars: List[str] = []
            while True:
                if pos >= length:
                    raise SqlSyntaxError("unterminated string literal", start)
                if sql[pos] == "'":
                    if pos + 1 < length and sql[pos + 1] == "'":
                        chars.append("'")
                        pos += 2
                        continue
                    pos += 1
                    break
                chars.append(sql[pos])
                pos += 1
            tokens.append(
                SqlToken("STRING", "".join(chars), value="".join(chars), position=start)
            )
            continue
        two = sql[pos : pos + 2]
        if two in _TWO_CHAR:
            tokens.append(SqlToken("OP", "<>" if two == "!=" else two, position=pos))
            pos += 2
            continue
        if char in _SINGLE_CHAR:
            tokens.append(SqlToken("OP", char, position=pos))
            pos += 1
            continue
        raise SqlSyntaxError(f"unexpected character {char!r}", pos)
    tokens.append(SqlToken("EOF", "", position=length))
    return tokens


# --------------------------------------------------------------------------- #
# parser
# --------------------------------------------------------------------------- #


class SqlParser:
    """Parses one SQL statement from a token list."""

    def __init__(self, tokens: List[SqlToken]) -> None:
        self.tokens = tokens
        self.index = 0
        self._placeholder_count = 0

    # -- plumbing -----------------------------------------------------------

    def _peek(self, offset: int = 0) -> SqlToken:
        return self.tokens[min(self.index + offset, len(self.tokens) - 1)]

    def _advance(self) -> SqlToken:
        token = self.tokens[self.index]
        if token.kind != "EOF":
            self.index += 1
        return token

    def _at_keyword(self, *keywords: str) -> bool:
        token = self._peek()
        return token.kind == "KEYWORD" and token.text in keywords

    def _accept_keyword(self, *keywords: str) -> Optional[SqlToken]:
        if self._at_keyword(*keywords):
            return self._advance()
        return None

    def _expect_keyword(self, keyword: str) -> SqlToken:
        token = self._peek()
        if token.kind != "KEYWORD" or token.text != keyword:
            raise SqlSyntaxError(
                f"expected {keyword}, found {token.text or 'end of input'!r}",
                token.position,
            )
        return self._advance()

    def _at_op(self, op: str) -> bool:
        token = self._peek()
        return token.kind == "OP" and token.text == op

    def _accept_op(self, op: str) -> bool:
        if self._at_op(op):
            self._advance()
            return True
        return False

    def _expect_op(self, op: str) -> None:
        token = self._peek()
        if token.kind != "OP" or token.text != op:
            raise SqlSyntaxError(
                f"expected {op!r}, found {token.text or 'end of input'!r}",
                token.position,
            )
        self._advance()

    def _expect_ident(self, context: str) -> str:
        token = self._peek()
        if token.kind == "IDENT":
            self._advance()
            return token.text
        # Allow non-reserved keywords to be used as identifiers where harmless.
        if token.kind == "KEYWORD" and token.text in ("KEY", "INDEX"):
            self._advance()
            return token.text.lower()
        raise SqlSyntaxError(
            f"expected an identifier {context}, found {token.text or 'end of input'!r}",
            token.position,
        )

    # -- entry point ----------------------------------------------------------

    def parse_statement(self) -> Statement:
        token = self._peek()
        if token.kind != "KEYWORD":
            raise SqlSyntaxError(
                f"expected a statement, found {token.text!r}", token.position
            )
        if token.text == "SELECT":
            statement: Statement = self.parse_select()
        elif token.text == "CREATE":
            statement = self._parse_create()
        elif token.text == "DROP":
            statement = self._parse_drop()
        elif token.text == "INSERT":
            statement = self._parse_insert()
        elif token.text == "DELETE":
            statement = self._parse_delete()
        elif token.text in ("BEGIN", "COMMIT", "ROLLBACK"):
            statement = self._parse_transaction()
        else:
            raise SqlSyntaxError(
                f"unsupported statement {token.text}", token.position
            )
        trailing = self._peek()
        if trailing.kind == "OP" and trailing.text == ";":  # pragma: no cover
            self._advance()
            trailing = self._peek()
        if trailing.kind != "EOF":
            raise SqlSyntaxError(
                f"unexpected trailing input {trailing.text!r}", trailing.position
            )
        return statement

    # -- DDL -------------------------------------------------------------------

    def _parse_create(self) -> Statement:
        self._expect_keyword("CREATE")
        if self._accept_keyword("TABLE"):
            return self._parse_create_table()
        if self._accept_keyword("INDEX"):
            return self._parse_create_index()
        token = self._peek()
        raise SqlSyntaxError(
            f"expected TABLE or INDEX after CREATE, found {token.text!r}",
            token.position,
        )

    def _parse_create_table(self) -> CreateTableStatement:
        if_not_exists = False
        if self._accept_keyword("IF"):
            self._expect_keyword("NOT")
            self._expect_keyword("EXISTS")
            if_not_exists = True
        table = self._expect_ident("as the table name")
        self._expect_op("(")
        columns: List[ColumnDef] = []
        while True:
            name = self._expect_ident("as a column name")
            type_name = self._expect_ident("as the column type")
            nullable = True
            primary_key = False
            while True:
                if self._accept_keyword("PRIMARY"):
                    self._expect_keyword("KEY")
                    primary_key = True
                    nullable = False
                elif self._accept_keyword("NOT"):
                    self._expect_keyword("NULL")
                    nullable = False
                else:
                    break
            columns.append(
                ColumnDef(
                    name=name,
                    type_name=type_name,
                    nullable=nullable,
                    primary_key=primary_key,
                )
            )
            if not self._accept_op(","):
                break
        self._expect_op(")")
        return CreateTableStatement(
            table=table, columns=columns, if_not_exists=if_not_exists
        )

    def _parse_create_index(self) -> CreateIndexStatement:
        name = self._expect_ident("as the index name")
        self._expect_keyword("ON")
        table = self._expect_ident("as the table name")
        self._expect_op("(")
        column = self._expect_ident("as the indexed column")
        self._expect_op(")")
        ordered = self._accept_keyword("ORDERED") is not None
        return CreateIndexStatement(
            name=name, table=table, column=column, ordered=ordered
        )

    def _parse_drop(self) -> DropTableStatement:
        self._expect_keyword("DROP")
        self._expect_keyword("TABLE")
        if_exists = False
        if self._accept_keyword("IF"):
            self._expect_keyword("EXISTS")
            if_exists = True
        table = self._expect_ident("as the table name")
        return DropTableStatement(table=table, if_exists=if_exists)

    # -- DML -------------------------------------------------------------------

    def _parse_insert(self) -> InsertStatement:
        self._expect_keyword("INSERT")
        self._expect_keyword("INTO")
        table = self._expect_ident("as the table name")
        columns: List[str] = []
        if self._accept_op("("):
            while True:
                columns.append(self._expect_ident("as a column name"))
                if not self._accept_op(","):
                    break
            self._expect_op(")")
        self._expect_keyword("VALUES")
        rows: List[List[SqlExpr]] = []
        while True:
            self._expect_op("(")
            row: List[SqlExpr] = [self.parse_expression()]
            while self._accept_op(","):
                row.append(self.parse_expression())
            self._expect_op(")")
            rows.append(row)
            if not self._accept_op(","):
                break
        return InsertStatement(table=table, columns=columns, rows=rows)

    def _parse_delete(self) -> DeleteStatement:
        self._expect_keyword("DELETE")
        self._expect_keyword("FROM")
        table = self._expect_ident("as the table name")
        where = None
        if self._accept_keyword("WHERE"):
            where = self.parse_expression()
        return DeleteStatement(table=table, where=where)

    # -- transactions -----------------------------------------------------------

    def _parse_transaction(self) -> Statement:
        token = self._advance()
        # The optional noise words are accepted and ignored, matching the
        # ``BEGIN WORK`` / ``COMMIT TRANSACTION`` spellings of the paper's
        # four backends.
        self._accept_keyword("TRANSACTION", "WORK")
        if token.text == "BEGIN":
            return BeginStatement()
        if token.text == "COMMIT":
            return CommitStatement()
        return RollbackStatement()

    # -- SELECT -----------------------------------------------------------------

    def parse_select(self) -> SelectStatement:
        self._expect_keyword("SELECT")
        statement = SelectStatement()
        statement.distinct = self._accept_keyword("DISTINCT") is not None
        statement.items = self._parse_select_items()
        self._expect_keyword("FROM")
        statement.from_tables.append(self._parse_table_ref())
        while True:
            if self._accept_op(","):
                statement.from_tables.append(self._parse_table_ref())
                continue
            if self._at_keyword("JOIN", "INNER", "LEFT"):
                self._accept_keyword("INNER")
                self._accept_keyword("LEFT")
                self._expect_keyword("JOIN")
                table = self._parse_table_ref()
                on = None
                if self._accept_keyword("ON"):
                    on = self.parse_expression()
                statement.joins.append(Join(table=table, on=on))
                continue
            break
        if self._accept_keyword("WHERE"):
            statement.where = self.parse_expression()
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            statement.group_by.append(self.parse_expression())
            while self._accept_op(","):
                statement.group_by.append(self.parse_expression())
        if self._accept_keyword("HAVING"):
            statement.having = self.parse_expression()
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            statement.order_by.append(self._parse_order_item())
            while self._accept_op(","):
                statement.order_by.append(self._parse_order_item())
        if self._accept_keyword("LIMIT"):
            token = self._peek()
            if token.kind != "NUMBER" or not isinstance(token.value, int):
                raise SqlSyntaxError("LIMIT requires an integer", token.position)
            self._advance()
            statement.limit = int(token.value)
            if self._accept_keyword("OFFSET"):
                token = self._peek()
                if token.kind != "NUMBER" or not isinstance(token.value, int):
                    raise SqlSyntaxError(
                        "OFFSET requires an integer", token.position
                    )
                self._advance()
                statement.offset = int(token.value)
        return statement

    def _parse_select_items(self) -> List[SelectItem]:
        items = [self._parse_select_item()]
        while self._accept_op(","):
            items.append(self._parse_select_item())
        return items

    def _parse_select_item(self) -> SelectItem:
        if self._at_op("*"):
            self._advance()
            return SelectItem(expr=Star())
        expr = self.parse_expression()
        alias = None
        if self._accept_keyword("AS"):
            alias = self._expect_ident("as the column alias")
        elif self._peek().kind == "IDENT":
            alias = self._advance().text
        return SelectItem(expr=expr, alias=alias)

    def _parse_table_ref(self) -> TableRef:
        name = self._expect_ident("as a table name")
        alias = None
        if self._accept_keyword("AS"):
            alias = self._expect_ident("as the table alias")
        elif self._peek().kind == "IDENT":
            alias = self._advance().text
        return TableRef(name=name, alias=alias)

    def _parse_order_item(self) -> OrderItem:
        expr = self.parse_expression()
        ascending = True
        if self._accept_keyword("DESC"):
            ascending = False
        else:
            self._accept_keyword("ASC")
        return OrderItem(expr=expr, ascending=ascending)

    # -- expressions --------------------------------------------------------------

    def parse_expression(self) -> SqlExpr:
        return self._parse_or()

    def _parse_or(self) -> SqlExpr:
        left = self._parse_and()
        while True:
            token = self._accept_keyword("OR")
            if token is None:
                return left
            right = self._parse_and()
            left = BinaryOperation(
                op=BinaryOperator.OR, left=left, right=right,
                position=token.position,
            )

    def _parse_and(self) -> SqlExpr:
        left = self._parse_not()
        while True:
            token = self._accept_keyword("AND")
            if token is None:
                return left
            right = self._parse_not()
            left = BinaryOperation(
                op=BinaryOperator.AND, left=left, right=right,
                position=token.position,
            )

    def _parse_not(self) -> SqlExpr:
        token = self._accept_keyword("NOT")
        if token is not None:
            return UnaryOperation(
                op="NOT", operand=self._parse_not(), position=token.position
            )
        return self._parse_predicate()

    def _parse_predicate(self) -> SqlExpr:
        left = self._parse_additive()
        token = self._peek()
        if token.kind == "OP" and token.text in ("=", "<>", "<", "<=", ">", ">="):
            self._advance()
            mapping = {
                "=": BinaryOperator.EQ,
                "<>": BinaryOperator.NE,
                "<": BinaryOperator.LT,
                "<=": BinaryOperator.LE,
                ">": BinaryOperator.GT,
                ">=": BinaryOperator.GE,
            }
            right = self._parse_additive()
            return BinaryOperation(
                op=mapping[token.text], left=left, right=right,
                position=token.position,
            )
        if self._at_keyword("BETWEEN"):
            # ``x BETWEEN lo AND hi`` desugars to ``x >= lo AND x <= hi`` at
            # parse time: downstream (analysis, planning, both executors) only
            # ever sees the sargable conjunction.  The bounds parse at the
            # additive level so the separating AND is not consumed by them.
            token = self._advance()
            lo = self._parse_additive()
            self._expect_keyword("AND")
            hi = self._parse_additive()
            return BinaryOperation(
                op=BinaryOperator.AND,
                left=BinaryOperation(
                    op=BinaryOperator.GE, left=left, right=lo,
                    position=token.position,
                ),
                right=BinaryOperation(
                    op=BinaryOperator.LE, left=left, right=hi,
                    position=token.position,
                ),
                position=token.position,
            )
        if self._at_keyword("IS"):
            self._advance()
            negated = self._accept_keyword("NOT") is not None
            self._expect_keyword("NULL")
            return IsNull(operand=left, negated=negated)
        if self._at_keyword("IN", "NOT"):
            negated = False
            if self._at_keyword("NOT"):
                # Only consume NOT when followed by IN ( ... ).
                if self._peek(1).kind == "KEYWORD" and self._peek(1).text == "IN":
                    self._advance()
                    negated = True
                else:
                    return left
            self._expect_keyword("IN")
            self._expect_op("(")
            items: List[SqlExpr] = [self.parse_expression()]
            while self._accept_op(","):
                items.append(self.parse_expression())
            self._expect_op(")")
            return InList(operand=left, items=tuple(items), negated=negated)
        return left

    def _parse_additive(self) -> SqlExpr:
        left = self._parse_multiplicative()
        while True:
            if self._at_op("+"):
                position = self._advance().position
                left = BinaryOperation(
                    op=BinaryOperator.ADD, left=left,
                    right=self._parse_multiplicative(), position=position,
                )
            elif self._at_op("-"):
                position = self._advance().position
                left = BinaryOperation(
                    op=BinaryOperator.SUB, left=left,
                    right=self._parse_multiplicative(), position=position,
                )
            else:
                return left

    def _parse_multiplicative(self) -> SqlExpr:
        left = self._parse_unary()
        while True:
            if self._at_op("*"):
                position = self._advance().position
                left = BinaryOperation(
                    op=BinaryOperator.MUL, left=left, right=self._parse_unary(),
                    position=position,
                )
            elif self._at_op("/"):
                position = self._advance().position
                left = BinaryOperation(
                    op=BinaryOperator.DIV, left=left, right=self._parse_unary(),
                    position=position,
                )
            else:
                return left

    def _parse_unary(self) -> SqlExpr:
        if self._at_op("-"):
            position = self._advance().position
            return UnaryOperation(
                op="-", operand=self._parse_unary(), position=position
            )
        return self._parse_primary()

    def _parse_primary(self) -> SqlExpr:
        token = self._peek()
        if token.kind == "NUMBER":
            self._advance()
            return Literal(value=token.value)
        if token.kind == "STRING":
            self._advance()
            return Literal(value=token.value)
        if token.kind == "KEYWORD" and token.text == "NULL":
            self._advance()
            return Literal(value=None)
        if token.kind == "KEYWORD" and token.text in ("TRUE", "FALSE"):
            self._advance()
            return Literal(value=token.text == "TRUE")
        if token.kind == "OP" and token.text == "?":
            self._advance()
            placeholder = Placeholder(index=self._placeholder_count)
            self._placeholder_count += 1
            return placeholder
        if token.kind == "OP" and token.text == "(":
            self._advance()
            if self._at_keyword("SELECT"):
                select = self.parse_select()
                self._expect_op(")")
                return ScalarSubquery(select=select)
            expr = self.parse_expression()
            self._expect_op(")")
            return expr
        if token.kind == "IDENT":
            return self._parse_identifier()
        raise SqlSyntaxError(
            f"expected an expression, found {token.text or 'end of input'!r}",
            token.position,
        )

    def _parse_identifier(self) -> SqlExpr:
        token = self._advance()
        name = token.text
        # Function call.
        if self._at_op("("):
            self._advance()
            distinct = self._accept_keyword("DISTINCT") is not None
            args: List[SqlExpr] = []
            if self._at_op("*"):
                self._advance()
                args.append(Star())
            elif not self._at_op(")"):
                args.append(self.parse_expression())
                while self._accept_op(","):
                    args.append(self.parse_expression())
            self._expect_op(")")
            return FunctionExpr(
                name=name.upper(), args=tuple(args), distinct=distinct,
                position=token.position,
            )
        # Qualified column reference.
        if self._at_op("."):
            self._advance()
            if self._at_op("*"):
                self._advance()
                return Star(table=name)
            column = self._expect_ident("as a column name")
            return ColumnRef(name=column, table=name, position=token.position)
        return ColumnRef(name=name, position=token.position)


def parse_sql(sql: str) -> Statement:
    """Parse one SQL statement."""
    return SqlParser(tokenize_sql(sql)).parse_statement()
