"""Abstract syntax tree of the SQL subset understood by the engine.

The subset covers what COSY needs (paper, Section 5): creating the schema,
bulk-inserting the Apprentice summary data, and evaluating the performance
property conditions and severity expressions as queries — selections,
equality joins over several tables, grouping with the standard aggregates,
ordering, scalar subqueries and parameter placeholders.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence, Tuple, Union

__all__ = [
    "SqlExpr",
    "Literal",
    "ColumnRef",
    "Star",
    "Placeholder",
    "BinaryOperator",
    "BinaryOperation",
    "UnaryOperation",
    "FunctionExpr",
    "IsNull",
    "InList",
    "ScalarSubquery",
    "SelectItem",
    "TableRef",
    "Join",
    "OrderItem",
    "SelectStatement",
    "ColumnDef",
    "CreateTableStatement",
    "CreateIndexStatement",
    "InsertStatement",
    "DeleteStatement",
    "DropTableStatement",
    "BeginStatement",
    "CommitStatement",
    "RollbackStatement",
    "Statement",
    "AGGREGATE_FUNCTIONS",
    "format_expr",
]

#: Function names treated as aggregates when they appear in a select list,
#: HAVING or ORDER BY clause.
AGGREGATE_FUNCTIONS = frozenset({"SUM", "MIN", "MAX", "AVG", "COUNT"})


# --------------------------------------------------------------------------- #
# expressions
# --------------------------------------------------------------------------- #


class SqlExpr:
    """Base class of SQL expressions."""


@dataclass(frozen=True)
class Literal(SqlExpr):
    """A literal value (number, string, boolean or NULL)."""

    value: Any


@dataclass(frozen=True)
class ColumnRef(SqlExpr):
    """A (possibly qualified) column reference, e.g. ``r.region_id``."""

    name: str
    table: Optional[str] = None
    #: Character offset of the reference in the statement text, used for
    #: diagnostics only; excluded from equality so AST comparisons ignore it.
    position: Optional[int] = field(default=None, compare=False)

    def __str__(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass(frozen=True)
class Star(SqlExpr):
    """``*`` (only valid in ``SELECT *`` and ``COUNT(*)``)."""

    table: Optional[str] = None


@dataclass(frozen=True)
class Placeholder(SqlExpr):
    """A ``?`` parameter placeholder (bound positionally at execution time)."""

    index: int


class BinaryOperator(enum.Enum):
    ADD = "+"
    SUB = "-"
    MUL = "*"
    DIV = "/"
    EQ = "="
    NE = "<>"
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    AND = "AND"
    OR = "OR"

    @property
    def is_comparison(self) -> bool:
        return self in (
            BinaryOperator.EQ,
            BinaryOperator.NE,
            BinaryOperator.LT,
            BinaryOperator.LE,
            BinaryOperator.GT,
            BinaryOperator.GE,
        )


@dataclass(frozen=True)
class BinaryOperation(SqlExpr):
    op: BinaryOperator
    left: SqlExpr
    right: SqlExpr
    position: Optional[int] = field(default=None, compare=False)


@dataclass(frozen=True)
class UnaryOperation(SqlExpr):
    """``NOT expr`` or ``-expr``."""

    op: str  # "NOT" | "-"
    operand: SqlExpr
    position: Optional[int] = field(default=None, compare=False)


@dataclass(frozen=True)
class FunctionExpr(SqlExpr):
    """A function call; aggregate functions are listed in AGGREGATE_FUNCTIONS."""

    name: str
    args: Tuple[SqlExpr, ...] = ()
    distinct: bool = False
    position: Optional[int] = field(default=None, compare=False)

    @property
    def is_aggregate(self) -> bool:
        return self.name.upper() in AGGREGATE_FUNCTIONS


@dataclass(frozen=True)
class IsNull(SqlExpr):
    operand: SqlExpr
    negated: bool = False


@dataclass(frozen=True)
class InList(SqlExpr):
    """``expr IN (v1, v2, …)`` over literal/parameter values."""

    operand: SqlExpr
    items: Tuple[SqlExpr, ...]
    negated: bool = False


@dataclass(frozen=True)
class ScalarSubquery(SqlExpr):
    """A parenthesised SELECT used as a scalar value."""

    select: "SelectStatement"


def format_expr(expr: SqlExpr) -> str:
    """Render an expression back to SQL-ish text for diagnostics.

    Used by error attribution and the EXPLAIN ``analysis:`` section; the
    output is for humans (it is not guaranteed to re-parse, e.g. scalar
    subqueries render abbreviated).
    """
    if isinstance(expr, Literal):
        value = expr.value
        if value is None:
            return "NULL"
        if value is True:
            return "TRUE"
        if value is False:
            return "FALSE"
        if isinstance(value, str):
            escaped = value.replace("'", "''")
            return f"'{escaped}'"
        return str(value)
    if isinstance(expr, ColumnRef):
        return str(expr)
    if isinstance(expr, Star):
        return f"{expr.table}.*" if expr.table else "*"
    if isinstance(expr, Placeholder):
        return "?"
    if isinstance(expr, BinaryOperation):
        left = format_expr(expr.left)
        right = format_expr(expr.right)
        if isinstance(expr.left, BinaryOperation):
            left = f"({left})"
        if isinstance(expr.right, BinaryOperation):
            right = f"({right})"
        return f"{left} {expr.op.value} {right}"
    if isinstance(expr, UnaryOperation):
        operand = format_expr(expr.operand)
        if isinstance(expr.operand, BinaryOperation):
            operand = f"({operand})"
        return f"NOT {operand}" if expr.op == "NOT" else f"-{operand}"
    if isinstance(expr, FunctionExpr):
        args = ", ".join(format_expr(arg) for arg in expr.args)
        prefix = "DISTINCT " if expr.distinct else ""
        return f"{expr.name.upper()}({prefix}{args})"
    if isinstance(expr, IsNull):
        middle = " IS NOT NULL" if expr.negated else " IS NULL"
        return format_expr(expr.operand) + middle
    if isinstance(expr, InList):
        items = ", ".join(format_expr(item) for item in expr.items)
        keyword = "NOT IN" if expr.negated else "IN"
        return f"{format_expr(expr.operand)} {keyword} ({items})"
    if isinstance(expr, ScalarSubquery):
        return "(SELECT ...)"
    return repr(expr)


# --------------------------------------------------------------------------- #
# statements
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class SelectItem:
    expr: SqlExpr
    alias: Optional[str] = None


@dataclass(frozen=True)
class TableRef:
    name: str
    alias: Optional[str] = None

    @property
    def binding(self) -> str:
        """The name under which the table's columns are visible."""
        return self.alias or self.name


@dataclass(frozen=True)
class Join:
    table: TableRef
    on: Optional[SqlExpr] = None


@dataclass(frozen=True)
class OrderItem:
    expr: SqlExpr
    ascending: bool = True


@dataclass
class SelectStatement:
    items: List[SelectItem] = field(default_factory=list)
    from_tables: List[TableRef] = field(default_factory=list)
    joins: List[Join] = field(default_factory=list)
    where: Optional[SqlExpr] = None
    group_by: List[SqlExpr] = field(default_factory=list)
    having: Optional[SqlExpr] = None
    order_by: List[OrderItem] = field(default_factory=list)
    limit: Optional[int] = None
    offset: Optional[int] = None
    distinct: bool = False

    @property
    def is_aggregate_query(self) -> bool:
        """True when the query groups or uses an aggregate in the select list."""
        if self.group_by:
            return True
        return any(_contains_aggregate(item.expr) for item in self.items)


def _contains_aggregate(expr: SqlExpr) -> bool:
    if isinstance(expr, FunctionExpr) and expr.is_aggregate:
        return True
    if isinstance(expr, BinaryOperation):
        return _contains_aggregate(expr.left) or _contains_aggregate(expr.right)
    if isinstance(expr, UnaryOperation):
        return _contains_aggregate(expr.operand)
    if isinstance(expr, FunctionExpr):
        return any(_contains_aggregate(arg) for arg in expr.args)
    if isinstance(expr, (IsNull,)):
        return _contains_aggregate(expr.operand)
    if isinstance(expr, InList):
        return _contains_aggregate(expr.operand)
    return False


@dataclass(frozen=True)
class ColumnDef:
    name: str
    type_name: str
    nullable: bool = True
    primary_key: bool = False


@dataclass
class CreateTableStatement:
    table: str
    columns: List[ColumnDef] = field(default_factory=list)
    if_not_exists: bool = False


@dataclass
class CreateIndexStatement:
    name: str
    table: str
    column: str
    #: ``CREATE INDEX ... ORDERED``: additionally maintain a sorted run per
    #: partition so range predicates and ORDER BY can use index order.
    ordered: bool = False


@dataclass
class InsertStatement:
    table: str
    columns: List[str] = field(default_factory=list)
    rows: List[List[SqlExpr]] = field(default_factory=list)


@dataclass
class DeleteStatement:
    table: str
    where: Optional[SqlExpr] = None


@dataclass
class DropTableStatement:
    table: str
    if_exists: bool = False


@dataclass(frozen=True)
class BeginStatement:
    """``BEGIN [TRANSACTION | WORK]`` — open an explicit transaction."""


@dataclass(frozen=True)
class CommitStatement:
    """``COMMIT [TRANSACTION | WORK]`` — make the open transaction durable."""


@dataclass(frozen=True)
class RollbackStatement:
    """``ROLLBACK [TRANSACTION | WORK]`` — undo the open transaction."""


Statement = Union[
    SelectStatement,
    CreateTableStatement,
    CreateIndexStatement,
    InsertStatement,
    DeleteStatement,
    DropTableStatement,
    BeginStatement,
    CommitStatement,
    RollbackStatement,
]
