"""Static semantic analysis: type inference, diagnostics and query lint.

The engine's front half mirrors the ASL property compiler: ``asl/semantic.py``
type-checks property specifications before any evaluation, and this module
gives the SQL layer the same contract.  :func:`analyze_select` runs once at
plan time (the plan cache makes the result as durable as the plan itself —
both are invalidated by the same per-table schema epochs) and produces:

* **type inference** — an INTEGER/FLOAT/BOOLEAN/VARCHAR/TIMESTAMP/NULL
  lattice (:class:`SqlType`) over column references, literals, arithmetic,
  comparisons, logical operators, ``IN`` lists, ``COALESCE``, aggregates and
  scalar subqueries, driven by the catalog's column types;
* **typed diagnostics** — :class:`~repro.relalg.errors.SemanticError`
  (a subclass of :class:`ExecutionError`) with statement-position context
  for statements that would *deterministically* fail on every non-NULL row
  they touch: type-incompatible ordered comparisons and arithmetic,
  ``VARCHAR``/``TIMESTAMP``-typed WHERE/HAVING clauses, aggregate misuse
  (aggregates in WHERE / GROUP BY, nested aggregates), and unknown or
  ambiguous column references;
* **lint and rewrite** — constant folding of literal-pure subexpressions
  (only when evaluation succeeds: ``1/0`` is left for the engine to raise),
  always-true conjunct elimination, always-false conjunct detection
  (including ``x = 1 AND x = 2`` contradictions) that lets the planner skip
  the scan entirely, and warnings for cross joins and non-sargable
  predicates on indexed columns.  Findings surface through the ``analysis:``
  section of ``Database.explain``.

The analysis is **conservative**.  Any expression it cannot type (parameter
placeholders, unknown functions, subqueries of unknown shape) is ``UNKNOWN``
and passes through untouched, so every statement accepted by the analyzer
keeps byte-identical rows and, for unfolded statements, byte-identical
``QueryStats``.  Equality comparisons never raise in this engine regardless
of operand types, so ``=``/``<>`` mismatches are only warned about, never
rejected.  Rejection is "modulo NULL": a statement like ``WHERE s > 5`` over
an all-NULL ``s`` column would have returned zero rows instead of raising,
but is still rejected because it fails on every row where the comparison is
actually evaluated.

Constant folding is applied by the *planner* only (the interpreted reference
engine evaluates the original AST); folding never changes result rows, but a
folded conjunct such as ``x = 1 + 1`` may classify as an index probe where
the unfolded form was a residual filter, improving the compiled engine's
QueryStats relative to the interpreter for such statements.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.relalg.compile import _apply_binop
from repro.relalg.errors import SemanticError
from repro.relalg.rowset import _is_true
from repro.relalg.schema import ColumnType
from repro.relalg.sqlast import (
    BinaryOperation,
    BinaryOperator,
    ColumnRef,
    DeleteStatement,
    FunctionExpr,
    InList,
    IsNull,
    Literal,
    Placeholder,
    ScalarSubquery,
    SelectStatement,
    SqlExpr,
    Star,
    TableRef,
    UnaryOperation,
    format_expr,
)
from repro.relalg.storage import Table

__all__ = [
    "SqlType",
    "Analysis",
    "analyze_select",
    "check_select",
    "check_delete",
    "proves_integer",
]


class SqlType(enum.Enum):
    """Static type lattice of the analyzer.

    ``NULL`` is the type of the literal ``NULL`` (propagates through every
    operator without raising); ``UNKNOWN`` is the conservative top element
    for values only known at bind time (parameters, unknown functions).
    """

    INTEGER = "INTEGER"
    FLOAT = "FLOAT"
    BOOLEAN = "BOOLEAN"
    VARCHAR = "VARCHAR"
    TIMESTAMP = "TIMESTAMP"
    NULL = "NULL"
    UNKNOWN = "UNKNOWN"


#: Types whose runtime values are Python numbers (bool included: it is an
#: int at runtime, so ``b + 1`` and ``'a' * b`` behave like integers).
_NUMERIC = frozenset((SqlType.INTEGER, SqlType.FLOAT, SqlType.BOOLEAN))

_FROM_COLUMN_TYPE = {
    ColumnType.INTEGER: SqlType.INTEGER,
    ColumnType.FLOAT: SqlType.FLOAT,
    ColumnType.VARCHAR: SqlType.VARCHAR,
    ColumnType.BOOLEAN: SqlType.BOOLEAN,
    ColumnType.TIMESTAMP: SqlType.TIMESTAMP,
}

_COMPARABLE_OPS = (
    BinaryOperator.LT,
    BinaryOperator.LE,
    BinaryOperator.GT,
    BinaryOperator.GE,
)


def _type_class(sql_type: SqlType) -> Optional[str]:
    """Runtime comparison class, or ``None`` when statically unknown."""
    if sql_type in _NUMERIC:
        return "numeric"
    if sql_type is SqlType.VARCHAR:
        return "string"
    if sql_type is SqlType.TIMESTAMP:
        return "timestamp"
    return None


@dataclass
class RangeInterval:
    """The tightest literal interval the range conjuncts on one
    ``(binding, column)`` pair imply.

    ``None`` bounds are unbounded on that side; ``lo_expr``/``hi_expr`` are
    the (folded) conjuncts that contributed each bound, kept for report
    wording and so a dominated conjunct can be removed from the processed
    list by identity.
    """

    lo: Any = None
    lo_incl: bool = True
    lo_expr: Optional[SqlExpr] = None
    hi: Any = None
    hi_incl: bool = True
    hi_expr: Optional[SqlExpr] = None

    @property
    def empty(self) -> bool:
        """True when no value can satisfy both bounds."""
        if self.lo_expr is None or self.hi_expr is None:
            return False
        try:
            if self.lo > self.hi:
                return True
            if self.lo == self.hi:
                return not (self.lo_incl and self.hi_incl)
        except TypeError:
            return False
        return False

    def contains(self, value: Any) -> bool:
        """Whether ``value`` could satisfy the interval (conservatively
        ``True`` on incomparable values)."""
        try:
            if self.lo_expr is not None and (
                value < self.lo or (value == self.lo and not self.lo_incl)
            ):
                return False
            if self.hi_expr is not None and (
                value > self.hi or (value == self.hi and not self.hi_incl)
            ):
                return False
        except TypeError:
            return True
        return True


@dataclass
class Analysis:
    """The result of analyzing one SELECT statement.

    ``applicable`` is False when the statement's scope could not be built
    (unknown table, duplicate binding) — those raise through the existing
    :class:`SchemaError`/:class:`ExecutionError` paths before analysis
    matters, and every other field is then empty/None.
    """

    applicable: bool = True
    errors: List[SemanticError] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)
    #: Human-readable findings for EXPLAIN's ``analysis:`` section
    #: (folds, dropped conjuncts, contradictions, warnings).
    report: Tuple[str, ...] = ()
    #: The planner's conjunct list after folding and always-true elimination,
    #: or ``None`` when the analysis was not applicable.
    conjuncts: Optional[List[SqlExpr]] = None
    #: True when some conjunct is provably false for every row — the planner
    #: skips the scan entirely (zero rows enumerated, zero stats).
    contradiction: bool = False
    #: ``(binding, lowered column) -> `` tightest literal range interval the
    #: conjuncts imply; feeds the planner's range selectivity so stacked
    #: conjuncts on one column estimate as a single interval instead of a
    #: product of independent selectivities.
    intervals: Dict[Tuple[str, str], RangeInterval] = field(
        default_factory=dict
    )
    #: Inferred type per select item (``None`` for ``*`` items).
    item_types: List[Optional[SqlType]] = field(default_factory=list)


def analyze_select(
    statement: SelectStatement,
    tables: Dict[str, Table],
    conjuncts: Optional[Sequence[SqlExpr]] = None,
) -> Analysis:
    """Analyze one SELECT statement against the catalog.

    ``conjuncts`` is the planner's pre-split WHERE/ON conjunct list; when
    supplied, the returned :attr:`Analysis.conjuncts` is that list folded
    and pruned in the same order, ready to feed ``_plan_levels``.  Without
    it the analyzer splits the statement itself (standalone callers such as
    the differential-fuzzer oracle).
    """
    analyzer = _Analyzer(statement, tables)
    if not analyzer.applicable:
        return Analysis(applicable=False)
    analyzer.analyze(conjuncts)
    return analyzer.result


def check_select(statement: SelectStatement, tables: Dict[str, Table]) -> None:
    """Raise the first :class:`SemanticError` of the statement, if any.

    Hook point of the interpreted reference engine, which must reject
    exactly the statements the planner rejects so differential tests stay
    green.
    """
    analysis = analyze_select(statement, tables)
    if analysis.errors:
        raise analysis.errors[0]


def check_delete(statement: DeleteStatement, tables: Dict[str, Table]) -> None:
    """Type-check a DELETE's WHERE clause before any row is examined."""
    if statement.where is None:
        return
    table = tables.get(statement.table.lower())
    if table is None:
        return  # the executor's own unknown-table path raises SchemaError
    select = SelectStatement(
        from_tables=[TableRef(name=statement.table)], where=statement.where
    )
    analysis = analyze_select(select, tables)
    if analysis.errors:
        raise analysis.errors[0]


# --------------------------------------------------------------------------- #
# planner helpers
# --------------------------------------------------------------------------- #


def proves_integer(
    expr: SqlExpr, column_type_of: Callable[[ColumnRef], Optional[ColumnType]]
) -> bool:
    """True when ``expr`` is a closed INTEGER-typed arithmetic fragment.

    Used by ``_classify_partial_aggregate`` to widen process-executor
    mergeability beyond bare INTEGER column refs: integer ``+``/``-``/``*``
    and unary minus are exact, associative and cannot raise, so per-shard
    partial aggregate states over such expressions merge losslessly.
    Division is excluded (it returns float), as are placeholders, functions
    and subqueries (their values are not provable at plan time).
    """
    if isinstance(expr, Literal):
        return type(expr.value) is int
    if isinstance(expr, ColumnRef):
        return column_type_of(expr) is ColumnType.INTEGER
    if isinstance(expr, UnaryOperation):
        return expr.op == "-" and proves_integer(expr.operand, column_type_of)
    if isinstance(expr, BinaryOperation):
        return expr.op in (
            BinaryOperator.ADD, BinaryOperator.SUB, BinaryOperator.MUL
        ) and proves_integer(
            expr.left, column_type_of
        ) and proves_integer(expr.right, column_type_of)
    return False


# --------------------------------------------------------------------------- #
# constant folding
# --------------------------------------------------------------------------- #

_NOT_CONST = object()


def _const_value(expr: SqlExpr) -> Any:
    """Evaluate a literal-pure expression under the engine's exact semantics.

    Returns :data:`_NOT_CONST` when the expression references rows,
    parameters or subqueries, or when evaluation raises (``1/0`` stays in
    the tree so the engine reports it, exactly as before).
    """
    try:
        return _const_eval(expr)
    except Exception:  # lint: allow-broad-except
        # Deliberate: folding is best-effort; any raising constant (1/0,
        # 'a' < 1, ...) is left in the tree for the engine to report.
        return _NOT_CONST


def _const_eval(expr: SqlExpr) -> Any:
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, UnaryOperation):
        value = _const_eval(expr.operand)
        if value is _NOT_CONST:
            return _NOT_CONST
        if expr.op == "NOT":
            return None if value is None else not _is_true(value)
        return None if value is None else -value
    if isinstance(expr, BinaryOperation):
        left = _const_eval(expr.left)
        if left is _NOT_CONST:
            return _NOT_CONST
        if expr.op is BinaryOperator.AND:
            # mirrors the compiled closure: bool short-circuit over _is_true
            if not _is_true(left):
                return False
            right = _const_eval(expr.right)
            return _NOT_CONST if right is _NOT_CONST else _is_true(right)
        if expr.op is BinaryOperator.OR:
            if _is_true(left):
                return True
            right = _const_eval(expr.right)
            return _NOT_CONST if right is _NOT_CONST else _is_true(right)
        right = _const_eval(expr.right)
        if right is _NOT_CONST:
            return _NOT_CONST
        if expr.op is BinaryOperator.EQ:
            if left is None or right is None:
                return None
            return left == right
        return _apply_binop(expr.op, left, right)
    if isinstance(expr, IsNull):
        value = _const_eval(expr.operand)
        if value is _NOT_CONST:
            return _NOT_CONST
        return value is not None if expr.negated else value is None
    if isinstance(expr, InList):
        value = _const_eval(expr.operand)
        if value is _NOT_CONST:
            return _NOT_CONST
        members = [_const_eval(item) for item in expr.items]
        if any(member is _NOT_CONST for member in members):
            return _NOT_CONST
        found = value in members
        return (not found) if expr.negated else found
    return _NOT_CONST


def _fold_expr(expr: SqlExpr) -> SqlExpr:
    """Fold literal-pure subexpressions bottom-up; identity when nothing folds."""
    value = _const_value(expr)
    if value is not _NOT_CONST:
        return expr if isinstance(expr, Literal) else Literal(value)
    if isinstance(expr, BinaryOperation):
        left = _fold_expr(expr.left)
        right = _fold_expr(expr.right)
        if left is expr.left and right is expr.right:
            return expr
        return BinaryOperation(
            op=expr.op, left=left, right=right, position=expr.position
        )
    if isinstance(expr, UnaryOperation):
        operand = _fold_expr(expr.operand)
        if operand is expr.operand:
            return expr
        return UnaryOperation(
            op=expr.op, operand=operand, position=expr.position
        )
    if isinstance(expr, IsNull):
        operand = _fold_expr(expr.operand)
        if operand is expr.operand:
            return expr
        return IsNull(operand=operand, negated=expr.negated)
    if isinstance(expr, InList):
        operand = _fold_expr(expr.operand)
        items = tuple(_fold_expr(item) for item in expr.items)
        if operand is expr.operand and all(
            folded is item for folded, item in zip(items, expr.items)
        ):
            return expr
        return InList(operand=operand, items=items, negated=expr.negated)
    return expr


# --------------------------------------------------------------------------- #
# the analyzer
# --------------------------------------------------------------------------- #


class _Analyzer:
    def __init__(
        self, statement: SelectStatement, tables: Dict[str, Table]
    ) -> None:
        self.statement = statement
        self.tables = tables
        self.result = Analysis()
        self.applicable = True
        self.bindings: List[Tuple[str, Table]] = []
        refs = list(statement.from_tables) + [
            join.table for join in statement.joins
        ]
        seen = set()
        for ref in refs:
            table = tables.get(ref.name.lower())
            binding = ref.binding.lower()
            if table is None or binding in seen:
                # unknown table / duplicate binding: the engines' own
                # SchemaError / ExecutionError paths fire before analysis.
                self.applicable = False
                return
            seen.add(binding)
            self.bindings.append((binding, table))
        if not refs:
            self.applicable = False

    # -- entry point ------------------------------------------------------------

    def analyze(self, conjuncts: Optional[Sequence[SqlExpr]]) -> None:
        statement = self.statement
        for item in statement.items:
            if isinstance(item.expr, Star):
                self.result.item_types.append(None)
                continue
            self.result.item_types.append(
                self._infer(item.expr, allow_aggregate=True, in_aggregate=False)
            )
        for join in statement.joins:
            if join.on is not None:
                self._check_condition(join.on, "JOIN ON clause")
        if statement.where is not None:
            self._check_condition(statement.where, "WHERE clause")
        for expr in statement.group_by:
            self._infer(expr, allow_aggregate=False, in_aggregate=False)
        if statement.having is not None:
            self._check_condition(
                statement.having, "HAVING clause", allow_aggregate=True
            )
        # ORDER BY resolves against output column names (aliases, positions)
        # before table scope, so its diagnostics are unreliable here: infer
        # for coverage, then discard anything it flagged.
        n_errors, n_warnings = len(self.result.errors), len(self.result.warnings)
        for order in statement.order_by:
            self._infer(order.expr, allow_aggregate=True, in_aggregate=False)
        del self.result.errors[n_errors:]
        del self.result.warnings[n_warnings:]

        self._process_conjuncts(conjuncts)
        report = list(self.result.report)
        report.extend(f"warning: {text}" for text in self.result.warnings)
        self.result.report = tuple(report)

    def _check_condition(
        self, expr: SqlExpr, label: str, allow_aggregate: bool = False
    ) -> None:
        inferred = self._infer(
            expr, allow_aggregate=allow_aggregate, in_aggregate=False
        )
        if inferred in (SqlType.VARCHAR, SqlType.TIMESTAMP):
            self._error(
                f"{label} must be a condition, got {inferred.value}",
                getattr(expr, "position", None),
            )

    # -- conjunct rewriting -----------------------------------------------------

    def _process_conjuncts(
        self, conjuncts: Optional[Sequence[SqlExpr]]
    ) -> None:
        if conjuncts is None:
            conjuncts = self._split_conjuncts()
        report: List[str] = []
        processed: List[SqlExpr] = []
        contradiction = False
        eq_literals: Dict[Tuple[str, str], Tuple[Any, SqlExpr]] = {}
        intervals: Dict[Tuple[str, str], RangeInterval] = {}
        for conjunct in conjuncts:
            folded = _fold_expr(conjunct)
            if isinstance(folded, Literal):
                value = folded.value
                if _is_true(value):
                    report.append(
                        f"always-true: {format_expr(conjunct)} "
                        "(conjunct dropped)"
                    )
                    continue
                contradiction = True
                report.append(
                    f"always-false: {format_expr(conjunct)} (scan skipped)"
                )
                processed.append(folded)
                continue
            if folded is not conjunct:
                report.append(
                    f"folded: {format_expr(conjunct)} "
                    f"-> {format_expr(folded)}"
                )
            if self._null_operand_conjunct(folded):
                contradiction = True
                report.append(
                    f"always-false: {format_expr(conjunct)} "
                    "(NULL operand; scan skipped)"
                )
            key_value = self._eq_literal_form(folded)
            if key_value is not None:
                key, value = key_value
                previous = eq_literals.get(key)
                if previous is not None and not (previous[0] == value):
                    contradiction = True
                    report.append(
                        f"contradiction: {format_expr(previous[1])} AND "
                        f"{format_expr(folded)} (scan skipped)"
                    )
                else:
                    eq_literals[key] = (value, folded)
            range_form = self._range_literal_form(folded)
            if range_form is not None:
                key, op, value = range_form
                if isinstance(value, float) and value != value:
                    # A NaN bound compares false with every value (and
                    # UNKNOWN with NULL): no row can pass.
                    contradiction = True
                    report.append(
                        f"always-false: {format_expr(folded)} "
                        "(NaN bound; scan skipped)"
                    )
                else:
                    interval = intervals.setdefault(key, RangeInterval())
                    if not self._merge_bound(
                        interval, op, value, folded, processed, report
                    ):
                        continue
                    if interval.empty:
                        contradiction = True
                        report.append(
                            f"contradiction: "
                            f"{format_expr(interval.lo_expr)} AND "
                            f"{format_expr(interval.hi_expr)} "
                            "(empty range; scan skipped)"
                        )
            processed.append(folded)
        for key, (value, expr) in eq_literals.items():
            interval = intervals.get(key)
            if interval is not None and not interval.contains(value):
                contradiction = True
                report.append(
                    f"contradiction: {format_expr(expr)} is outside the "
                    f"range on {key[1]} (scan skipped)"
                )
        self._warn_cross_join(processed)
        self._warn_non_sargable(processed)
        self.result.conjuncts = processed
        self.result.contradiction = contradiction
        self.result.intervals = intervals
        self.result.report = tuple(report)

    def _split_conjuncts(self) -> List[SqlExpr]:
        conjuncts: List[SqlExpr] = []
        for join in self.statement.joins:
            if join.on is not None:
                conjuncts.extend(_split_and(join.on))
        if self.statement.where is not None:
            conjuncts.extend(_split_and(self.statement.where))
        return conjuncts

    def _null_operand_conjunct(self, conjunct: SqlExpr) -> bool:
        """A comparison/arithmetic conjunct with a literal NULL side is NULL
        (falsy) for every row."""
        if not isinstance(conjunct, BinaryOperation):
            return False
        if conjunct.op in (BinaryOperator.AND, BinaryOperator.OR):
            return False
        return (
            isinstance(conjunct.left, Literal) and conjunct.left.value is None
        ) or (
            isinstance(conjunct.right, Literal)
            and conjunct.right.value is None
        )

    def _eq_literal_form(
        self, conjunct: SqlExpr
    ) -> Optional[Tuple[Tuple[str, str], Any]]:
        """``(binding, column) -> literal`` for conjuncts of shape
        ``col = literal`` / ``literal = col``."""
        if not (
            isinstance(conjunct, BinaryOperation)
            and conjunct.op is BinaryOperator.EQ
        ):
            return None
        ref, literal = conjunct.left, conjunct.right
        if isinstance(ref, Literal) and isinstance(literal, ColumnRef):
            ref, literal = literal, ref
        if not (isinstance(ref, ColumnRef) and isinstance(literal, Literal)):
            return None
        if literal.value is None:
            return None
        resolved = self._resolve_binding(ref)
        if resolved is None:
            return None
        return (resolved, ref.name.lower()), literal.value

    _FLIPPED_COMPARISON = {
        BinaryOperator.LT: BinaryOperator.GT,
        BinaryOperator.LE: BinaryOperator.GE,
        BinaryOperator.GT: BinaryOperator.LT,
        BinaryOperator.GE: BinaryOperator.LE,
    }

    def _range_literal_form(
        self, conjunct: SqlExpr
    ) -> Optional[Tuple[Tuple[str, str], BinaryOperator, Any]]:
        """``((binding, column), op, literal)`` for conjuncts of shape
        ``col op literal`` / ``literal op col`` with an ordered comparison
        (the operator is normalised to the column-on-the-left reading)."""
        if not (
            isinstance(conjunct, BinaryOperation)
            and conjunct.op in _COMPARABLE_OPS
        ):
            return None
        ref, literal = conjunct.left, conjunct.right
        op = conjunct.op
        if isinstance(ref, Literal) and isinstance(literal, ColumnRef):
            ref, literal = literal, ref
            op = self._FLIPPED_COMPARISON[op]
        if not (isinstance(ref, ColumnRef) and isinstance(literal, Literal)):
            return None
        if literal.value is None:
            return None
        resolved = self._resolve_binding(ref)
        if resolved is None:
            return None
        return (resolved, ref.name.lower()), op, literal.value

    @staticmethod
    def _merge_bound(
        interval: RangeInterval,
        op: BinaryOperator,
        value: Any,
        conjunct: SqlExpr,
        processed: List[SqlExpr],
        report: List[str],
    ) -> bool:
        """Intersect one range conjunct into ``interval``.

        Returns ``False`` when the conjunct is dominated by an existing bound
        (the caller drops it); when the conjunct *replaces* a weaker bound,
        the weaker conjunct is removed from ``processed`` instead.  Dropping
        is sound for literal comparisons: the analyzer already rejects static
        type-class mismatches, and NULL column values fail the kept conjunct
        the same way they fail the dropped one.
        """
        lower = op in (BinaryOperator.GT, BinaryOperator.GE)
        inclusive = op in (BinaryOperator.GE, BinaryOperator.LE)
        if lower:
            current, current_incl, current_expr = (
                interval.lo, interval.lo_incl, interval.lo_expr
            )
        else:
            current, current_incl, current_expr = (
                interval.hi, interval.hi_incl, interval.hi_expr
            )
        if current_expr is not None:
            try:
                if lower:
                    tighter = value > current or (
                        value == current and current_incl and not inclusive
                    )
                else:
                    tighter = value < current or (
                        value == current and current_incl and not inclusive
                    )
            except TypeError:
                # Incomparable bound classes: the static mismatch is already
                # a semantic error; keep both conjuncts untouched.
                return True
            if not tighter:
                report.append(
                    f"redundant range: {format_expr(conjunct)} (implied by "
                    f"{format_expr(current_expr)}; conjunct dropped)"
                )
                return False
            for index, existing in enumerate(processed):
                if existing is current_expr:
                    del processed[index]
                    break
            report.append(
                f"redundant range: {format_expr(current_expr)} (implied by "
                f"{format_expr(conjunct)}; conjunct dropped)"
            )
        if lower:
            interval.lo, interval.lo_incl, interval.lo_expr = (
                value, inclusive, conjunct
            )
        else:
            interval.hi, interval.hi_incl, interval.hi_expr = (
                value, inclusive, conjunct
            )
        return True

    # -- warnings ---------------------------------------------------------------

    def _warn_cross_join(self, conjuncts: Sequence[SqlExpr]) -> None:
        if len(self.bindings) < 2:
            return
        parent = {binding: binding for binding, _table in self.bindings}

        def find(node: str) -> str:
            while parent[node] != node:
                parent[node] = parent[parent[node]]
                node = parent[node]
            return node

        for conjunct in conjuncts:
            touched = sorted(self._expr_bindings(conjunct))
            for other in touched[1:]:
                parent[find(other)] = find(touched[0])
        roots = {find(binding) for binding, _table in self.bindings}
        if len(roots) > 1:
            self.result.warnings.append(
                "cross join: no predicate connects "
                + ", ".join(sorted(binding for binding, _ in self.bindings))
            )

    def _warn_non_sargable(self, conjuncts: Sequence[SqlExpr]) -> None:
        for conjunct in conjuncts:
            if not (
                isinstance(conjunct, BinaryOperation)
                and conjunct.op.is_comparison
            ):
                continue
            for side, other in (
                (conjunct.left, conjunct.right),
                (conjunct.right, conjunct.left),
            ):
                if isinstance(side, (ColumnRef, Literal, Placeholder)):
                    continue
                if not isinstance(other, (Literal, Placeholder)):
                    continue
                for ref in self._column_refs(side):
                    table = self._table_of(ref)
                    if table is not None and ref.name.lower() in table.indexes:
                        self.result.warnings.append(
                            "non-sargable predicate on indexed column "
                            f"{ref}: {format_expr(conjunct)}"
                        )
                        break

    def _column_refs(self, expr: SqlExpr) -> List[ColumnRef]:
        refs: List[ColumnRef] = []
        stack = [expr]
        while stack:
            node = stack.pop()
            if isinstance(node, ColumnRef):
                refs.append(node)
            elif isinstance(node, BinaryOperation):
                stack.extend((node.left, node.right))
            elif isinstance(node, UnaryOperation):
                stack.append(node.operand)
            elif isinstance(node, FunctionExpr):
                stack.extend(node.args)
            elif isinstance(node, IsNull):
                stack.append(node.operand)
            elif isinstance(node, InList):
                stack.append(node.operand)
                stack.extend(node.items)
        return refs

    def _expr_bindings(self, expr: SqlExpr) -> set:
        touched = set()
        for ref in self._column_refs(expr):
            binding = self._resolve_binding(ref)
            if binding is not None:
                touched.add(binding)
        return touched

    def _resolve_binding(self, ref: ColumnRef) -> Optional[str]:
        """The binding a reference resolves to, or None when unresolvable."""
        name = ref.name.lower()
        if ref.table is not None:
            binding = ref.table.lower()
            for bound, table in self.bindings:
                if bound == binding and self._column_type(table, name) is not None:
                    return bound
            return None
        matches = [
            bound
            for bound, table in self.bindings
            if self._column_type(table, name) is not None
        ]
        return matches[0] if len(matches) == 1 else None

    def _table_of(self, ref: ColumnRef) -> Optional[Table]:
        binding = self._resolve_binding(ref)
        if binding is None:
            return None
        for bound, table in self.bindings:
            if bound == binding:
                return table
        return None

    @staticmethod
    def _column_type(table: Table, lowered_name: str) -> Optional[ColumnType]:
        for column in table.schema.columns:
            if column.name.lower() == lowered_name:
                return column.type
        return None

    # -- type inference ---------------------------------------------------------

    def _error(self, message: str, position: Optional[int]) -> None:
        self.result.errors.append(SemanticError(message, position))

    def _infer(
        self, expr: SqlExpr, allow_aggregate: bool, in_aggregate: bool
    ) -> SqlType:
        if isinstance(expr, Literal):
            return self._literal_type(expr.value)
        if isinstance(expr, Placeholder):
            return SqlType.UNKNOWN
        if isinstance(expr, ColumnRef):
            return self._infer_column(expr)
        if isinstance(expr, Star):
            return SqlType.UNKNOWN
        if isinstance(expr, UnaryOperation):
            return self._infer_unary(expr, allow_aggregate, in_aggregate)
        if isinstance(expr, BinaryOperation):
            return self._infer_binary(expr, allow_aggregate, in_aggregate)
        if isinstance(expr, IsNull):
            self._infer(expr.operand, allow_aggregate, in_aggregate)
            return SqlType.BOOLEAN
        if isinstance(expr, InList):
            self._infer(expr.operand, allow_aggregate, in_aggregate)
            for item in expr.items:
                self._infer(item, allow_aggregate, in_aggregate)
            return SqlType.BOOLEAN
        if isinstance(expr, FunctionExpr):
            return self._infer_function(expr, allow_aggregate, in_aggregate)
        if isinstance(expr, ScalarSubquery):
            return self._infer_subquery(expr)
        return SqlType.UNKNOWN

    @staticmethod
    def _literal_type(value: Any) -> SqlType:
        if value is None:
            return SqlType.NULL
        if isinstance(value, bool):
            return SqlType.BOOLEAN
        if isinstance(value, int):
            return SqlType.INTEGER
        if isinstance(value, float):
            return SqlType.FLOAT
        if isinstance(value, str):
            return SqlType.VARCHAR
        return SqlType.UNKNOWN

    def _infer_column(self, ref: ColumnRef) -> SqlType:
        name = ref.name.lower()
        if ref.table is not None:
            binding = ref.table.lower()
            for bound, table in self.bindings:
                if bound == binding:
                    column_type = self._column_type(table, name)
                    if column_type is None:
                        break
                    return _FROM_COLUMN_TYPE[column_type]
            self._error(f"unknown column {ref}", ref.position)
            return SqlType.UNKNOWN
        matches = [
            self._column_type(table, name)
            for _bound, table in self.bindings
            if self._column_type(table, name) is not None
        ]
        if not matches:
            self._error(f"unknown column {ref}", ref.position)
            return SqlType.UNKNOWN
        if len(matches) > 1:
            self._error(
                f"ambiguous column reference {ref.name!r}", ref.position
            )
            return SqlType.UNKNOWN
        return _FROM_COLUMN_TYPE[matches[0]]

    def _infer_unary(
        self, expr: UnaryOperation, allow_aggregate: bool, in_aggregate: bool
    ) -> SqlType:
        operand = self._infer(expr.operand, allow_aggregate, in_aggregate)
        if expr.op == "NOT":
            return SqlType.BOOLEAN
        if operand in (SqlType.VARCHAR, SqlType.TIMESTAMP):
            self._error(
                f"invalid operand for unary -: {operand.value} "
                f"in {format_expr(expr)}",
                expr.position,
            )
            return SqlType.UNKNOWN
        if operand is SqlType.BOOLEAN:
            return SqlType.INTEGER
        return operand

    def _infer_binary(
        self, expr: BinaryOperation, allow_aggregate: bool, in_aggregate: bool
    ) -> SqlType:
        left = self._infer(expr.left, allow_aggregate, in_aggregate)
        right = self._infer(expr.right, allow_aggregate, in_aggregate)
        op = expr.op
        if op in (BinaryOperator.AND, BinaryOperator.OR):
            return SqlType.BOOLEAN
        left_class = _type_class(left)
        right_class = _type_class(right)
        if op.is_comparison:
            if left_class is not None and right_class is not None:
                if left_class != right_class:
                    if op in _COMPARABLE_OPS:
                        self._error(
                            f"cannot compare {left.value} and {right.value}: "
                            f"{format_expr(expr)}",
                            expr.position,
                        )
                    else:
                        # = / <> across classes never raises — it is just
                        # constant-valued (equality of a str and an int is
                        # always False).  Lint, don't reject.
                        self.result.warnings.append(
                            f"mixed-type comparison {format_expr(expr)} "
                            f"({left.value} vs {right.value})"
                        )
            return SqlType.BOOLEAN
        # arithmetic
        if SqlType.NULL in (left, right):
            return SqlType.NULL
        if left_class is None or right_class is None:
            return SqlType.UNKNOWN
        if left_class == "numeric" and right_class == "numeric":
            if op is BinaryOperator.DIV:
                return SqlType.FLOAT
            if SqlType.FLOAT in (left, right):
                return SqlType.FLOAT
            return SqlType.INTEGER
        if op is BinaryOperator.ADD and left_class == right_class == "string":
            return SqlType.VARCHAR  # concatenation
        if op is BinaryOperator.MUL and (
            (left_class == "string" and right in (SqlType.INTEGER, SqlType.BOOLEAN))
            or (right_class == "string" and left in (SqlType.INTEGER, SqlType.BOOLEAN))
        ):
            return SqlType.VARCHAR  # string repetition
        if op is BinaryOperator.SUB and left_class == right_class == "timestamp":
            return SqlType.UNKNOWN  # timedelta: outside the lattice
        self._error(
            f"invalid operands for {op.value}: {left.value} and "
            f"{right.value} in {format_expr(expr)}",
            expr.position,
        )
        return SqlType.UNKNOWN

    def _infer_function(
        self, expr: FunctionExpr, allow_aggregate: bool, in_aggregate: bool
    ) -> SqlType:
        name = expr.name.upper()
        if expr.is_aggregate:
            if not allow_aggregate or in_aggregate:
                self._error(
                    f"aggregate function {expr.name} is not allowed here",
                    expr.position,
                )
            arg_types = [
                self._infer(arg, allow_aggregate=True, in_aggregate=True)
                for arg in expr.args
                if not isinstance(arg, Star)
            ]
            if name == "COUNT":
                return SqlType.INTEGER
            if len(expr.args) != 1 or not arg_types:
                return SqlType.UNKNOWN  # arity errors are the engine's
            arg = arg_types[0]
            if name in ("SUM", "AVG"):
                if arg in (SqlType.VARCHAR, SqlType.TIMESTAMP):
                    self._error(
                        f"{name} requires numeric values, got {arg.value} "
                        f"in {format_expr(expr)}",
                        expr.position,
                    )
                    return SqlType.UNKNOWN
                if name == "AVG":
                    return SqlType.FLOAT if arg in _NUMERIC else SqlType.UNKNOWN
                if arg in (SqlType.INTEGER, SqlType.BOOLEAN):
                    return SqlType.INTEGER
                return SqlType.FLOAT if arg is SqlType.FLOAT else SqlType.UNKNOWN
            return arg  # MIN / MAX: any homogeneous column type works
        arg_types = [
            self._infer(arg, allow_aggregate, in_aggregate)
            for arg in expr.args
        ]
        if name == "COALESCE":
            return self._join_types(arg_types)
        if len(arg_types) != 1:
            return SqlType.UNKNOWN  # unknown function / arity: engine's call
        arg = arg_types[0]
        if name == "ABS":
            if arg in (SqlType.VARCHAR, SqlType.TIMESTAMP):
                self._error(
                    f"ABS requires a numeric value, got {arg.value} "
                    f"in {format_expr(expr)}",
                    expr.position,
                )
                return SqlType.UNKNOWN
            return SqlType.INTEGER if arg is SqlType.BOOLEAN else arg
        if name == "LENGTH":
            if arg in _NUMERIC or arg is SqlType.TIMESTAMP:
                self._error(
                    f"LENGTH requires a string value, got {arg.value} "
                    f"in {format_expr(expr)}",
                    expr.position,
                )
                return SqlType.UNKNOWN
            return SqlType.NULL if arg is SqlType.NULL else SqlType.INTEGER
        if name in ("LOWER", "UPPER"):
            # implemented over str(value): never raises, any operand type
            return SqlType.NULL if arg is SqlType.NULL else SqlType.VARCHAR
        return SqlType.UNKNOWN

    @staticmethod
    def _join_types(arg_types: List[SqlType]) -> SqlType:
        """Least upper bound for COALESCE: NULLs drop out, numeric widens."""
        known = [t for t in arg_types if t is not SqlType.NULL]
        if not known:
            return SqlType.NULL
        if any(t is SqlType.UNKNOWN for t in known):
            return SqlType.UNKNOWN
        classes = {_type_class(t) for t in known}
        if len(classes) > 1:
            return SqlType.UNKNOWN
        if classes == {"numeric"}:
            if SqlType.FLOAT in known:
                return SqlType.FLOAT
            if SqlType.INTEGER in known:
                return SqlType.INTEGER
            return SqlType.BOOLEAN
        return known[0]

    def _infer_subquery(self, expr: ScalarSubquery) -> SqlType:
        sub = analyze_select(expr.select, self.tables)
        self.result.errors.extend(sub.errors)
        if len(sub.item_types) == 1 and sub.item_types[0] is not None:
            return sub.item_types[0]
        return SqlType.UNKNOWN


def _split_and(expr: SqlExpr) -> List[SqlExpr]:
    if isinstance(expr, BinaryOperation) and expr.op is BinaryOperator.AND:
        return _split_and(expr.left) + _split_and(expr.right)
    return [expr]
