"""Result containers and counters shared by every execution engine.

:class:`QueryStats` and :class:`ResultSet` used to live in
:mod:`repro.relalg.executor`; they moved into this dependency-free module when
the engine was split into a planner (:mod:`repro.relalg.planner`), an
expression compiler (:mod:`repro.relalg.compile`) and two executors (the
plan-driven :class:`~repro.relalg.executor.SelectExecutor` and the reference
:class:`~repro.relalg.interp.InterpretedSelectExecutor`).  The old import
locations keep working — :mod:`repro.relalg.executor` re-exports both names.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Tuple

from repro.relalg.errors import ExecutionError

__all__ = ["QueryStats", "ResultSet", "merge_partition_counts"]


def merge_partition_counts(target: Dict[int, int], source: Dict[int, int]) -> None:
    """Accumulate per-partition scan counts (the single merge rule shared by
    :meth:`QueryStats.merge` and the database-level execution summary)."""
    if source:
        for pid, scanned in source.items():
            target[pid] = target.get(pid, 0) + scanned


@dataclass
class QueryStats:
    """Counters describing the work one query performed.

    The counters record *physical* work:

    ``rows_scanned``
        rows read from table storage — full scans count every live row, index
        and hash-join probes count only the matching rows they return (plus,
        for hash joins, the one-time scan that builds the hash table);
    ``index_lookups``
        probes into a secondary hash index;
    ``range_probes``
        bisections of an ordered index's sorted run (one per partition run
        visited by a range predicate);
    ``hash_probes``
        probes into a transient hash-join table built for one execution;
    ``rows_joined``
        fully joined rows that satisfied every predicate;
    ``rows_returned``
        rows of the final (projected, ordered, limited) result;
    ``subqueries``
        scalar subqueries executed (their counters are merged in).

    ``partition_rows_scanned`` breaks the scan work down per storage
    partition (partition id → rows scanned there).  Executors only fill it
    for tables with more than one partition — an empty mapping means "all
    work in partition 0", which keeps single-partition statement counters
    byte-identical to the historical (and interpreted-engine) values.  The
    field is excluded from equality so differential stat comparisons between
    engines stay meaningful.
    """

    rows_scanned: int = 0
    index_lookups: int = 0
    range_probes: int = 0
    rows_joined: int = 0
    rows_returned: int = 0
    subqueries: int = 0
    hash_probes: int = 0
    partition_rows_scanned: Dict[int, int] = field(
        default_factory=dict, compare=False, repr=False
    )

    def merge(self, other: "QueryStats") -> None:
        """Accumulate the counters of a nested (sub)query."""
        self.rows_scanned += other.rows_scanned
        self.index_lookups += other.index_lookups
        self.range_probes += other.range_probes
        self.rows_joined += other.rows_joined
        self.subqueries += other.subqueries
        self.hash_probes += other.hash_probes
        merge_partition_counts(
            self.partition_rows_scanned, other.partition_rows_scanned
        )


@dataclass
class ResultSet:
    """The materialised result of a SELECT."""

    columns: List[str]
    rows: List[Tuple[Any, ...]]
    stats: QueryStats = field(default_factory=QueryStats)

    def scalar(self) -> Any:
        """The single value of a 1×1 result; raises otherwise."""
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise ExecutionError(
                f"expected a scalar result, got {len(self.rows)} row(s) × "
                f"{len(self.columns)} column(s)"
            )
        return self.rows[0][0]

    def column(self, name: str) -> List[Any]:
        """All values of one result column."""
        try:
            index = [c.lower() for c in self.columns].index(name.lower())
        except ValueError:
            raise ExecutionError(
                f"result has no column {name!r} (columns: {self.columns})"
            ) from None
        return [row[index] for row in self.rows]

    def as_dicts(self) -> List[Dict[str, Any]]:
        """Rows as column→value dictionaries."""
        return [dict(zip(self.columns, row)) for row in self.rows]

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Tuple[Any, ...]]:
        return iter(self.rows)


class _SortKey:
    """Sort key wrapper handling NULLs (sorted last) and descending order."""

    __slots__ = ("value", "ascending")

    def __init__(self, value: Any, ascending: bool) -> None:
        self.value = value
        self.ascending = ascending

    def __lt__(self, other: "_SortKey") -> bool:
        a, b = self.value, other.value
        if a is None and b is None:
            return False
        if a is None:
            return not self.ascending
        if b is None:
            return self.ascending
        if self.ascending:
            return a < b
        return b < a

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _SortKey) and self.value == other.value


def _is_true(value: Any) -> bool:
    return bool(value) and value is not None


def _hashable(value: Any) -> Any:
    if isinstance(value, (list, dict, set)):
        return repr(value)
    return value
