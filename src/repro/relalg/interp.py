"""The reference (interpreted) SELECT executor.

This is the engine the repository seeded with: it re-walks the SQL AST for
every row — :meth:`_eval` dispatches on node type per predicate per row, the
required-bindings sets are recomputed at every join level and joins are
nested loops with at best a single-column index probe.

It is kept, unchanged in semantics, for two reasons:

* **differential testing** — the plan-driven engine
  (:mod:`repro.relalg.planner` / :mod:`repro.relalg.executor`) must produce
  identical results, and identical :class:`~repro.relalg.rowset.QueryStats`
  on the index-probe paths the A1 ablation measures;
* **benchmarking** — ``benchmarks/run_bench.py`` reports the compiled
  engine's speedup over this baseline (``Database(engine="interpreted")``
  routes SELECTs here).

One bug of the seed is fixed in both engines: pending predicates are
partitioned by node *identity* rather than structural equality, so duplicate
conjuncts (``WHERE a = 1 AND a = 1``) are each filed exactly once.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.relalg.compile import _apply_binop
from repro.relalg.errors import ExecutionError, SchemaError
from repro.relalg.semantics import check_select
from repro.relalg.rowset import QueryStats, ResultSet, _SortKey, _hashable, _is_true
from repro.relalg.sqlast import (
    BinaryOperation,
    BinaryOperator,
    ColumnRef,
    FunctionExpr,
    InList,
    IsNull,
    Literal,
    Placeholder,
    ScalarSubquery,
    SelectStatement,
    SqlExpr,
    Star,
    TableRef,
    UnaryOperation,
)
from repro.relalg.storage import Table

__all__ = ["InterpretedSelectExecutor"]

#: A row environment: table binding name → column name (lower case) → value.
RowEnv = Dict[str, Dict[str, Any]]


class _Missing:
    """Marker for 'column not found' distinct from NULL."""


_MISSING = _Missing()


class InterpretedSelectExecutor:
    """Executes SELECT statements by walking the AST per row (reference)."""

    def __init__(
        self,
        tables: Dict[str, Table],
        params: Sequence[Any] = (),
        stats: Optional[QueryStats] = None,
    ) -> None:
        self.tables = tables
        self.params = list(params)
        self.stats = stats or QueryStats()

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #

    def execute(self, statement: SelectStatement) -> ResultSet:
        """Run the statement and return the materialised result."""
        bindings = self._bindings(statement)
        # Reject statically ill-typed statements exactly as the planner does
        # (same analyzer, same SemanticError), so the reference engine and
        # the compiled engines stay differentially identical.
        check_select(statement, self.tables)
        conjuncts = self._conjuncts(statement)
        rows = list(self._enumerate_rows(bindings, conjuncts))

        if statement.is_aggregate_query:
            columns, result_rows = self._aggregate(statement, rows)
        else:
            columns, result_rows = self._project(statement, bindings, rows)

        if statement.order_by:
            result_rows = self._order(statement, rows, result_rows, columns)

        if statement.distinct:
            seen = set()
            unique: List[Tuple[Any, ...]] = []
            for row in result_rows:
                key = tuple(_hashable(v) for v in row)
                if key not in seen:
                    seen.add(key)
                    unique.append(row)
            result_rows = unique

        if statement.limit is not None or statement.offset:
            start = statement.offset or 0
            stop = None if statement.limit is None else start + statement.limit
            result_rows = result_rows[start:stop]

        self.stats.rows_returned += len(result_rows)
        return ResultSet(columns=columns, rows=result_rows, stats=self.stats)

    # ------------------------------------------------------------------ #
    # FROM / WHERE
    # ------------------------------------------------------------------ #

    def _bindings(self, statement: SelectStatement) -> List[Tuple[str, Table]]:
        refs: List[TableRef] = list(statement.from_tables) + [
            join.table for join in statement.joins
        ]
        if not refs:
            raise ExecutionError("SELECT requires at least one table")
        bindings: List[Tuple[str, Table]] = []
        seen = set()
        for ref in refs:
            table = self.tables.get(ref.name.lower())
            if table is None:
                raise SchemaError(f"unknown table {ref.name!r}")
            binding = ref.binding.lower()
            if binding in seen:
                raise ExecutionError(f"duplicate table binding {ref.binding!r}")
            seen.add(binding)
            bindings.append((binding, table))
        return bindings

    def _conjuncts(self, statement: SelectStatement) -> List[SqlExpr]:
        conjuncts: List[SqlExpr] = []
        for join in statement.joins:
            if join.on is not None:
                conjuncts.extend(_split_and(join.on))
        if statement.where is not None:
            conjuncts.extend(_split_and(statement.where))
        return conjuncts

    def _enumerate_rows(
        self, bindings: List[Tuple[str, Table]], conjuncts: List[SqlExpr]
    ) -> Iterator[RowEnv]:
        """Nested-loop join with index lookups and early predicate application."""
        remaining = list(conjuncts)

        def recurse(level: int, env: RowEnv, pending: List[SqlExpr]) -> Iterator[RowEnv]:
            if level == len(bindings):
                if all(_is_true(self._eval(p, env)) for p in pending):
                    self.stats.rows_joined += 1
                    yield env
                return
            binding, table = bindings[level]
            bound = {name for name, _ in bindings[: level + 1]}
            # Predicates that become fully evaluable once this table is bound;
            # partitioned by identity so duplicate conjuncts are each filed
            # exactly once.
            applicable = [
                p
                for p in pending
                if self._required_bindings(p, bindings) <= bound
            ]
            applicable_ids = {id(p) for p in applicable}
            later = [p for p in pending if id(p) not in applicable_ids]
            # Try an index lookup driven by an equality predicate.
            index_plan = self._index_probe(
                table, binding, applicable, env, bindings, bound - {binding}
            )
            if index_plan is not None:
                column, value, used = index_plan
                # A NULL probe key never matches (`col = NULL` is NULL, i.e.
                # falsy) — the seed's index path wrongly returned NULL rows
                # here while its scan path filtered them out; both engines
                # now agree with the scan semantics.  A NaN key never matches
                # either (`NaN = NaN` is false), but the bucket lookup would
                # hit when the probe is the stored NaN object itself.
                candidates: Iterable[Tuple[Any, ...]] = (
                    ()
                    if value is None or value != value
                    else table.lookup(column, value)
                )
                self.stats.index_lookups += 1
                filters = [p for p in applicable if p is not used]
            else:
                candidates = table.scan()
                filters = applicable
            for row in candidates:
                self.stats.rows_scanned += 1
                row_env = dict(env)
                row_env[binding] = _row_mapping(table, row)
                if all(_is_true(self._eval(p, row_env)) for p in filters):
                    yield from recurse(level + 1, row_env, later)

        yield from recurse(0, {}, remaining)

    def _index_probe(
        self,
        table: Table,
        binding: str,
        predicates: List[SqlExpr],
        env: RowEnv,
        bindings: List[Tuple[str, Table]],
        already_bound: set,
    ) -> Optional[Tuple[str, Any, SqlExpr]]:
        """Find an equality predicate usable as an index probe on ``table``."""
        for predicate in predicates:
            if not (
                isinstance(predicate, BinaryOperation)
                and predicate.op is BinaryOperator.EQ
            ):
                continue
            for this, other in (
                (predicate.left, predicate.right),
                (predicate.right, predicate.left),
            ):
                if not isinstance(this, ColumnRef):
                    continue
                if this.table is not None and this.table.lower() != binding:
                    continue
                if this.table is None and not _column_in_table(table, this.name):
                    continue
                if table.index_for(this.name) is None:
                    continue
                # The other side must be computable from the already bound rows.
                if not self._required_bindings(other, bindings) <= already_bound:
                    continue
                try:
                    value = self._eval(other, env)
                except ExecutionError:
                    continue
                return this.name, value, predicate
        return None

    def _required_bindings(
        self, expr: SqlExpr, bindings: List[Tuple[str, Table]]
    ) -> set:
        """The table bindings that must be bound before ``expr`` can be evaluated."""
        refs: set = set()

        def visit(node: SqlExpr) -> None:
            if isinstance(node, ColumnRef):
                if node.table is not None:
                    refs.add(node.table.lower())
                else:
                    for binding, table in bindings:
                        if _column_in_table(table, node.name):
                            refs.add(binding)
            elif isinstance(node, BinaryOperation):
                visit(node.left)
                visit(node.right)
            elif isinstance(node, UnaryOperation):
                visit(node.operand)
            elif isinstance(node, FunctionExpr):
                for arg in node.args:
                    visit(arg)
            elif isinstance(node, IsNull):
                visit(node.operand)
            elif isinstance(node, InList):
                visit(node.operand)
                for item in node.items:
                    visit(item)
            # ScalarSubquery: self-contained, requires nothing from the outer
            # query (correlated subqueries are not supported).

        visit(expr)
        return refs

    # ------------------------------------------------------------------ #
    # projection and aggregation
    # ------------------------------------------------------------------ #

    def _project(
        self,
        statement: SelectStatement,
        bindings: List[Tuple[str, Table]],
        rows: List[RowEnv],
    ) -> Tuple[List[str], List[Tuple[Any, ...]]]:
        columns = self._output_columns(statement, bindings)
        result: List[Tuple[Any, ...]] = []
        for env in rows:
            values: List[Any] = []
            for item in statement.items:
                if isinstance(item.expr, Star):
                    values.extend(self._star_values(item.expr, bindings, env))
                else:
                    values.append(self._eval(item.expr, env))
            result.append(tuple(values))
        return columns, result

    def _aggregate(
        self, statement: SelectStatement, rows: List[RowEnv]
    ) -> Tuple[List[str], List[Tuple[Any, ...]]]:
        groups: Dict[Tuple[Any, ...], List[RowEnv]] = {}
        order: List[Tuple[Any, ...]] = []
        if statement.group_by:
            for env in rows:
                key = tuple(
                    _hashable(self._eval(expr, env)) for expr in statement.group_by
                )
                if key not in groups:
                    groups[key] = []
                    order.append(key)
                groups[key].append(env)
        else:
            groups[()] = rows
            order.append(())

        columns = [
            item.alias or _column_name(item.expr) for item in statement.items
        ]
        result: List[Tuple[Any, ...]] = []
        for key in order:
            group_rows = groups[key]
            if statement.having is not None:
                if not _is_true(self._eval_aggregate(statement.having, group_rows)):
                    continue
            values = tuple(
                self._eval_aggregate(item.expr, group_rows)
                for item in statement.items
            )
            result.append(values)
        return columns, result

    def _order(
        self,
        statement: SelectStatement,
        rows: List[RowEnv],
        result_rows: List[Tuple[Any, ...]],
        columns: List[str],
    ) -> List[Tuple[Any, ...]]:
        """Apply ORDER BY (output aliases, positions or source expressions)."""
        lowered = [c.lower() for c in columns]

        def key_for(position: int) -> Tuple:
            keys = []
            for item in statement.order_by:
                value: Any = None
                expr = item.expr
                if isinstance(expr, ColumnRef) and expr.table is None and (
                    expr.name.lower() in lowered
                ):
                    value = result_rows[position][lowered.index(expr.name.lower())]
                elif isinstance(expr, Literal) and isinstance(expr.value, int):
                    value = result_rows[position][expr.value - 1]
                elif statement.is_aggregate_query:
                    # `ORDER BY COUNT(*)` names no output column, but the
                    # expression may be one of the output expressions
                    # (position-insensitive structural equality).
                    matched = None
                    for index, out_item in enumerate(statement.items):
                        if out_item.expr == expr:
                            matched = index
                            break
                    if matched is None:
                        raise ExecutionError(
                            "ORDER BY of an aggregate query must reference "
                            "output columns"
                        )
                    value = result_rows[position][matched]
                else:
                    value = self._eval(expr, rows[position])
                keys.append(_SortKey(value, item.ascending))
            return tuple(keys)

        positions = sorted(range(len(result_rows)), key=key_for)
        return [result_rows[p] for p in positions]

    def _output_columns(
        self, statement: SelectStatement, bindings: List[Tuple[str, Table]]
    ) -> List[str]:
        columns: List[str] = []
        for item in statement.items:
            if isinstance(item.expr, Star):
                for binding, table in bindings:
                    if item.expr.table is not None and (
                        item.expr.table.lower() != binding
                    ):
                        continue
                    columns.extend(table.schema.column_names)
            else:
                columns.append(item.alias or _column_name(item.expr))
        return columns

    def _star_values(
        self, star: Star, bindings: List[Tuple[str, Table]], env: RowEnv
    ) -> List[Any]:
        values: List[Any] = []
        for binding, table in bindings:
            if star.table is not None and star.table.lower() != binding:
                continue
            mapping = env[binding]
            values.extend(mapping[c.lower()] for c in table.schema.column_names)
        return values

    # ------------------------------------------------------------------ #
    # expression evaluation
    # ------------------------------------------------------------------ #

    def _eval(self, expr: SqlExpr, env: RowEnv) -> Any:
        if isinstance(expr, Literal):
            return expr.value
        if isinstance(expr, Placeholder):
            if expr.index >= len(self.params):
                raise ExecutionError(
                    f"statement uses {expr.index + 1} parameter(s) but only "
                    f"{len(self.params)} were supplied"
                )
            return self.params[expr.index]
        if isinstance(expr, ColumnRef):
            value = self._resolve_column(expr, env)
            if value is _MISSING:
                raise ExecutionError(f"unknown column {expr}")
            return value
        if isinstance(expr, UnaryOperation):
            value = self._eval(expr.operand, env)
            if expr.op == "NOT":
                return None if value is None else (not _is_true(value))
            return None if value is None else -value
        if isinstance(expr, BinaryOperation):
            return self._eval_binary(expr, env, source=expr)
        if isinstance(expr, IsNull):
            value = self._eval(expr.operand, env)
            return (value is not None) if expr.negated else (value is None)
        if isinstance(expr, InList):
            value = self._eval(expr.operand, env)
            members = [self._eval(item, env) for item in expr.items]
            found = value in members
            return (not found) if expr.negated else found
        if isinstance(expr, FunctionExpr):
            if expr.is_aggregate:
                raise ExecutionError(
                    f"aggregate function {expr.name} is not allowed here"
                )
            return self._eval_scalar_function(expr, env)
        if isinstance(expr, ScalarSubquery):
            return self._eval_subquery(expr, env)
        if isinstance(expr, Star):
            raise ExecutionError("'*' is only valid in SELECT lists and COUNT(*)")
        raise ExecutionError(f"unsupported expression {expr!r}")

    def _eval_binary(
        self,
        expr: BinaryOperation,
        env: RowEnv,
        source: Optional[SqlExpr] = None,
    ) -> Any:
        op = expr.op
        if op is BinaryOperator.AND:
            return _is_true(self._eval(expr.left, env)) and _is_true(
                self._eval(expr.right, env)
            )
        if op is BinaryOperator.OR:
            return _is_true(self._eval(expr.left, env)) or _is_true(
                self._eval(expr.right, env)
            )
        left = self._eval(expr.left, env)
        right = self._eval(expr.right, env)
        # Shared operator semantics (NULL propagation, typed errors) live in
        # compile._apply_binop so both engines raise byte-identical messages.
        return _apply_binop(op, left, right, source)

    def _eval_scalar_function(self, expr: FunctionExpr, env: RowEnv) -> Any:
        name = expr.name.upper()
        args = [self._eval(arg, env) for arg in expr.args]
        if name == "ABS" and len(args) == 1:
            return None if args[0] is None else abs(args[0])
        if name == "COALESCE":
            for arg in args:
                if arg is not None:
                    return arg
            return None
        if name == "LENGTH" and len(args) == 1:
            return None if args[0] is None else len(args[0])
        if name == "LOWER" and len(args) == 1:
            return None if args[0] is None else str(args[0]).lower()
        if name == "UPPER" and len(args) == 1:
            return None if args[0] is None else str(args[0]).upper()
        raise ExecutionError(f"unknown function {expr.name!r}")

    def _eval_subquery(self, expr: ScalarSubquery, env: RowEnv) -> Any:
        executor = InterpretedSelectExecutor(
            self.tables, self.params, stats=QueryStats()
        )
        result = executor.execute(expr.select)
        self.stats.merge(result.stats)
        self.stats.subqueries += 1
        if len(result.rows) == 0:
            return None
        if len(result.rows) != 1 or len(result.columns) != 1:
            raise ExecutionError(
                f"scalar subquery returned {len(result.rows)} row(s) × "
                f"{len(result.columns)} column(s)"
            )
        return result.rows[0][0]

    def _eval_aggregate(self, expr: SqlExpr, group: List[RowEnv]) -> Any:
        """Evaluate an expression that may contain aggregate functions."""
        if isinstance(expr, FunctionExpr) and expr.is_aggregate:
            return self._aggregate_value(expr, group)
        if isinstance(expr, BinaryOperation):
            clone = BinaryOperation(
                op=expr.op,
                left=Literal(self._eval_aggregate(expr.left, group)),
                right=Literal(self._eval_aggregate(expr.right, group)),
            )
            return self._eval_binary(clone, {})
        if isinstance(expr, UnaryOperation):
            value = self._eval_aggregate(expr.operand, group)
            if expr.op == "NOT":
                return None if value is None else (not _is_true(value))
            return None if value is None else -value
        if isinstance(expr, (Literal, Placeholder, ScalarSubquery)):
            return self._eval(expr, {})
        # Plain column references inside an aggregate query pick the value of
        # the first row of the group (they are expected to be grouping keys).
        if not group:
            return None
        return self._eval(expr, group[0])

    def _aggregate_value(self, expr: FunctionExpr, group: List[RowEnv]) -> Any:
        name = expr.name.upper()
        if name == "COUNT" and (not expr.args or isinstance(expr.args[0], Star)):
            return len(group)
        if not expr.args:
            raise ExecutionError(f"aggregate {name} requires an argument")
        values = []
        for env in group:
            value = self._eval(expr.args[0], env)
            if value is not None:
                values.append(value)
        if expr.distinct:
            seen = set()
            unique = []
            for value in values:
                key = _hashable(value)
                if key not in seen:
                    seen.add(key)
                    unique.append(value)
            values = unique
        if name == "COUNT":
            return len(values)
        if name == "SUM":
            return sum(values) if values else None
        if name == "AVG":
            return (sum(values) / len(values)) if values else None
        if name == "MIN":
            return min(values) if values else None
        if name == "MAX":
            return max(values) if values else None
        raise ExecutionError(f"unknown aggregate {name}")

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #

    def _resolve_column(self, ref: ColumnRef, env: RowEnv) -> Any:
        name = ref.name.lower()
        if ref.table is not None:
            mapping = env.get(ref.table.lower())
            if mapping is None or name not in mapping:
                return _MISSING
            return mapping[name]
        matches = [m for m in env.values() if name in m]
        if not matches:
            return _MISSING
        if len(matches) > 1:
            raise ExecutionError(f"ambiguous column reference {ref.name!r}")
        return matches[0][name]


# --------------------------------------------------------------------------- #
# module helpers
# --------------------------------------------------------------------------- #


def _split_and(expr: SqlExpr) -> List[SqlExpr]:
    if isinstance(expr, BinaryOperation) and expr.op is BinaryOperator.AND:
        return _split_and(expr.left) + _split_and(expr.right)
    return [expr]


def _row_mapping(table: Table, row: Tuple[Any, ...]) -> Dict[str, Any]:
    return {
        column.name.lower(): value
        for column, value in zip(table.schema.columns, row)
    }


def _column_in_table(table: Table, column: str) -> bool:
    lowered = column.lower()
    return any(c.name.lower() == lowered for c in table.schema.columns)


def _column_name(expr: SqlExpr) -> str:
    if isinstance(expr, ColumnRef):
        return expr.name
    if isinstance(expr, FunctionExpr):
        return expr.name.lower()
    return "expr"
