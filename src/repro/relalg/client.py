"""Client API layers: "native" (C-like) vs. "bridged" (JDBC-like) access.

COSY is implemented in Java and accesses the database through JDBC; the paper
notes that *"accessing the database via JDBC is a factor of two to four slower
than C-based implementations"* but that fetching a record from the Oracle
server still only takes about 1 ms, so the portability is worth the cost.

This module models the two client stacks on top of a
:class:`~repro.relalg.backends.SimulatedBackend`:

* :class:`NativeClient` — a thin, C-like driver with minimal per-call and
  per-row marshalling cost;
* :class:`BridgedClient` — a JDBC-like driver whose per-call and per-row
  costs are a configurable factor (default 3×) higher, modelling the
  additional object creation and type conversion of the bridge.

The E2 benchmark fetches records through both clients and reports the
slowdown factor, which should land in the paper's 2–4× band.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, List, Optional, Sequence, Tuple, Union

from repro.relalg.backends import SimulatedBackend
from repro.relalg.errors import ExecutionError
from repro.relalg.executor import ResultSet

__all__ = ["ClientCosts", "DatabaseClient", "NativeClient", "BridgedClient"]


@dataclass(frozen=True)
class ClientCosts:
    """Marshalling costs of one client API stack (seconds)."""

    #: Fixed cost per executed statement (statement preparation, call setup).
    per_call: float
    #: Cost per fetched result row (cursor advance, type conversion).
    per_row: float
    #: Cost per bound parameter.
    per_param: float


class DatabaseClient:
    """Base class of the two client API layers."""

    #: Human-readable name of the API stack.
    api_name = "abstract"

    def __init__(self, backend: SimulatedBackend, costs: ClientCosts) -> None:
        self.backend = backend
        self.costs = costs
        self.client_time = 0.0
        self.calls = 0
        self.rows_fetched = 0

    # ------------------------------------------------------------------ #

    def execute(self, sql: str, params: Sequence[Any] = ()) -> Union[ResultSet, int]:
        """Execute one statement through this client stack."""
        result = self.backend.execute(sql, params)
        rows = len(result.rows) if isinstance(result, ResultSet) else 0
        overhead = (
            self.costs.per_call
            + self.costs.per_param * len(params)
            + self.costs.per_row * rows
        )
        self.client_time += overhead
        self.backend.clock.advance(overhead)
        self.calls += 1
        self.rows_fetched += rows
        return result

    def executemany(self, sql: str, param_rows: Iterable[Sequence[Any]]) -> int:
        """Execute a parametrised statement over many rows, batched.

        The rows are handed to the backend's batched ``executemany`` (one
        virtual round trip per backend DML batch; SELECTs execute per row —
        they cannot be batched on the wire); the client stack charges its
        per-call marshalling once per backend statement — one per batch for
        DML, one per row for SELECT — plus the per-parameter binding cost and
        the per-row fetch cost of every returned row.
        """
        rows = list(param_rows)
        if not rows:
            return 0
        fetched_before = self.backend.rows_fetched
        statements_before = self.backend.statements_executed
        try:
            total = self.backend.executemany(sql, rows)
        finally:
            # Charge the marshalling of whatever the backend actually
            # applied — on a mid-batch failure earlier sub-batches have
            # committed and advanced the clock, so the client must account
            # for them too.
            fetched = self.backend.rows_fetched - fetched_before
            batches = self.backend.statements_executed - statements_before
            shipped = rows[: batches * self.backend.batch_size]
            overhead = (
                self.costs.per_call * batches
                + self.costs.per_param * sum(len(params) for params in shipped)
                + self.costs.per_row * fetched
            )
            self.client_time += overhead
            self.backend.clock.advance(overhead)
            self.calls += batches
            self.rows_fetched += fetched
        return total

    def query(self, sql: str, params: Sequence[Any] = ()) -> ResultSet:
        """Execute a statement that must be a SELECT."""
        result = self.execute(sql, params)
        if not isinstance(result, ResultSet):
            raise ExecutionError("query() requires a SELECT statement")
        return result

    def explain(self, sql: str) -> str:
        """EXPLAIN a SELECT through this client (planning introspection only;
        no marshalling or backend costs are charged)."""
        return self.backend.explain(sql)

    def fetch_record(self, sql: str, params: Sequence[Any] = ()) -> Tuple[Any, ...]:
        """Fetch exactly one record (the paper's 1 ms-per-record microbenchmark)."""
        result = self.query(sql, params)
        if not result.rows:
            raise LookupError("fetch_record: query returned no rows")
        return result.rows[0]

    def close(self) -> None:
        """Release the backend's engine resources (idempotent)."""
        self.backend.close()

    @property
    def elapsed(self) -> float:
        """Total virtual time including backend and client overhead."""
        return self.backend.elapsed

    def plan_cache_info(self) -> dict:
        """Plan-cache counters of the engine this client ultimately drives.

        Repeated statements (the pushdown strategy re-runs every compiled
        property query per analysis context) are parsed and planned once;
        re-executions only bind fresh parameters.
        """
        return self.backend.plan_cache_info()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(backend={self.backend.profile.name!r})"


class NativeClient(DatabaseClient):
    """A thin, C-like database driver."""

    api_name = "native"

    def __init__(self, backend: SimulatedBackend) -> None:
        super().__init__(
            backend,
            ClientCosts(per_call=1.5e-5, per_row=2.0e-6, per_param=5.0e-7),
        )


class BridgedClient(DatabaseClient):
    """A JDBC-like bridged driver with higher marshalling costs.

    ``slowdown`` scales the native costs; the paper quotes a factor of two to
    four, the default of 3 sits in the middle of that band.
    """

    api_name = "bridged"

    def __init__(self, backend: SimulatedBackend, slowdown: float = 3.0) -> None:
        if slowdown <= 1.0:
            raise ValueError("the bridged client must be slower than the native one")
        native = ClientCosts(per_call=1.5e-5, per_row=2.0e-6, per_param=5.0e-7)
        super().__init__(
            backend,
            ClientCosts(
                per_call=native.per_call * slowdown,
                per_row=native.per_row * slowdown,
                per_param=native.per_param * slowdown,
            ),
        )
        self.slowdown = slowdown
