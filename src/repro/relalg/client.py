"""Client API layers: "native" (C-like) vs. "bridged" (JDBC-like) access.

COSY is implemented in Java and accesses the database through JDBC; the paper
notes that *"accessing the database via JDBC is a factor of two to four slower
than C-based implementations"* but that fetching a record from the Oracle
server still only takes about 1 ms, so the portability is worth the cost.

This module models the two client stacks on top of a
:class:`~repro.relalg.backends.SimulatedBackend`:

* :class:`NativeClient` — a thin, C-like driver with minimal per-call and
  per-row marshalling cost;
* :class:`BridgedClient` — a JDBC-like driver whose per-call and per-row
  costs are a configurable factor (default 3×) higher, modelling the
  additional object creation and type conversion of the bridge.

The E2 benchmark fetches records through both clients and reports the
slowdown factor, which should land in the paper's 2–4× band.

On top of either stack, :class:`AsyncClient` adds the era's standard
mitigation for round-trip-bound workloads: **request pipelining**.  Its
submit/gather API keeps up to ``window`` statements in flight; the network
round trips of concurrent statements overlap on the virtual timeline while
the server-side work still serializes (see
:class:`~repro.relalg.backends.PipelinedTimeline`).  With ``window=1`` it
degenerates to the serial client byte for byte — the E8 benchmark measures
how the overlap closes the gap to the serialized-work floor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, List, Optional, Sequence, Tuple, Union

from repro.relalg.backends import PipelinedTimeline, SimulatedBackend
from repro.relalg.errors import ExecutionError
from repro.relalg.executor import ResultSet

__all__ = [
    "ClientCosts",
    "DatabaseClient",
    "NativeClient",
    "BridgedClient",
    "PendingResult",
    "AsyncClient",
]


@dataclass(frozen=True)
class ClientCosts:
    """Marshalling costs of one client API stack (seconds)."""

    #: Fixed cost per executed statement (statement preparation, call setup).
    per_call: float
    #: Cost per fetched result row (cursor advance, type conversion).
    per_row: float
    #: Cost per bound parameter.
    per_param: float


class DatabaseClient:
    """Base class of the two client API layers."""

    #: Human-readable name of the API stack.
    api_name = "abstract"

    def __init__(self, backend: SimulatedBackend, costs: ClientCosts) -> None:
        self.backend = backend
        self.costs = costs
        self.client_time = 0.0
        self.calls = 0
        self.rows_fetched = 0

    # ------------------------------------------------------------------ #

    def execute(self, sql: str, params: Sequence[Any] = ()) -> Union[ResultSet, int]:
        """Execute one statement through this client stack."""
        result = self.backend.execute(sql, params)
        rows = len(result.rows) if isinstance(result, ResultSet) else 0
        overhead = (
            self.costs.per_call
            + self.costs.per_param * len(params)
            + self.costs.per_row * rows
        )
        self.client_time += overhead
        self.backend.clock.advance(overhead, kind="client")
        self.calls += 1
        self.rows_fetched += rows
        return result

    def executemany(self, sql: str, param_rows: Iterable[Sequence[Any]]) -> int:
        """Execute a parametrised statement over many rows, batched.

        The rows are handed to the backend's batched ``executemany`` (one
        virtual round trip per backend DML batch; SELECTs execute per row —
        they cannot be batched on the wire); the client stack charges its
        per-call marshalling once per backend statement — one per batch for
        DML, one per row for SELECT — plus the per-parameter binding cost and
        the per-row fetch cost of every returned row.
        """
        rows = list(param_rows)
        if not rows:
            return 0
        fetched_before = self.backend.rows_fetched
        statements_before = self.backend.statements_executed
        try:
            total = self.backend.executemany(sql, rows)
        finally:
            # Charge the marshalling of whatever the backend actually
            # applied — on a mid-batch failure earlier sub-batches have
            # committed and advanced the clock, so the client must account
            # for them too.
            fetched = self.backend.rows_fetched - fetched_before
            statements = self.backend.statements_executed - statements_before
            if statements == 0:
                # Nothing executed (e.g. the statement failed to parse):
                # nothing was shipped, and ``sql`` may not even be valid, so
                # don't re-parse it to classify the statement kind.
                shipped: List[Sequence[Any]] = []
            elif self.backend.database.is_select(sql):
                # SELECTs execute per parameter row — one backend statement
                # ships exactly one parameter row, so a mid-run failure must
                # not charge the binding cost of rows that never went out.
                shipped = rows[:statements]
            else:
                # DML ships one backend-sized batch per statement.
                shipped = rows[: statements * self.backend.batch_size]
            overhead = (
                self.costs.per_call * statements
                + self.costs.per_param * sum(len(params) for params in shipped)
                + self.costs.per_row * fetched
            )
            self.client_time += overhead
            self.backend.clock.advance(overhead, kind="client")
            self.calls += statements
            self.rows_fetched += fetched
        return total

    def query(self, sql: str, params: Sequence[Any] = ()) -> ResultSet:
        """Execute a statement that must be a SELECT."""
        result = self.execute(sql, params)
        if not isinstance(result, ResultSet):
            raise ExecutionError("query() requires a SELECT statement")
        return result

    def begin(self) -> None:
        """Open a transaction (a normal ``execute``: round trip + marshalling
        charged like any other statement)."""
        self.execute("BEGIN")

    def commit(self) -> None:
        """Commit the open transaction (charged like any other statement)."""
        self.execute("COMMIT")

    def rollback(self) -> None:
        """Roll back the open transaction (charged like any other statement)."""
        self.execute("ROLLBACK")

    def explain(self, sql: str) -> str:
        """EXPLAIN a SELECT through this client (planning introspection only;
        no marshalling or backend costs are charged).  Non-SELECT statements
        raise the engine's typed :class:`ExecutionError`, mirrored unchanged
        through the backend passthrough."""
        return self.backend.explain(sql)

    def fetch_record(self, sql: str, params: Sequence[Any] = ()) -> Tuple[Any, ...]:
        """Fetch exactly one record (the paper's 1 ms-per-record microbenchmark)."""
        result = self.query(sql, params)
        if not result.rows:
            raise LookupError("fetch_record: query returned no rows")
        return result.rows[0]

    def close(self) -> None:
        """Release the backend's engine resources (idempotent)."""
        self.backend.close()

    def __enter__(self) -> "DatabaseClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    @property
    def elapsed(self) -> float:
        """Total virtual time including backend and client overhead."""
        return self.backend.elapsed

    def plan_cache_info(self) -> dict:
        """Plan-cache counters of the engine this client ultimately drives.

        Repeated statements (the pushdown strategy re-runs every compiled
        property query per analysis context) are parsed and planned once;
        re-executions only bind fresh parameters.
        """
        return self.backend.plan_cache_info()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(backend={self.backend.profile.name!r})"


class NativeClient(DatabaseClient):
    """A thin, C-like database driver."""

    api_name = "native"

    def __init__(self, backend: SimulatedBackend) -> None:
        super().__init__(
            backend,
            ClientCosts(per_call=1.5e-5, per_row=2.0e-6, per_param=5.0e-7),
        )


class PendingResult:
    """Handle to a statement submitted through :class:`AsyncClient`.

    The in-process engine executes eagerly at submit time (results are
    therefore identical to serial execution, in submission order); the handle
    withholds the value until the pipeline is gathered, so that a caller can
    never observe data whose virtual completion time has not been charged
    yet.  ``window=1`` statements complete at submit time (serial execution).
    """

    __slots__ = ("sql", "slot", "_value", "_done")

    def __init__(self, sql: str, value: Any, slot: Any = None, done: bool = False) -> None:
        self.sql = sql
        self.slot = slot
        self._value = value
        self._done = done

    @property
    def done(self) -> bool:
        return self._done

    def result(self) -> Any:
        """The statement's result; raises until the pipeline is gathered."""
        if not self._done:
            raise ExecutionError(
                "statement is still in flight; gather() the pipeline first"
            )
        return self._value

    def _complete(self) -> Any:
        self._done = True
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "done" if self._done else "in flight"
        return f"PendingResult({self.sql[:40]!r}, {state})"


class AsyncClient:
    """Pipelined submit/gather wrapper over a :class:`DatabaseClient`.

    ``submit`` hands a statement to the underlying client stack and returns a
    :class:`PendingResult`; ``gather`` completes everything in flight and
    commits the overlap-aware timing to the backend's virtual clock.  Up to
    ``window`` statements are in flight at once — their network round trips
    overlap, their server-side work serializes (or follows the per-partition
    makespan when the backend models ``parallelism`` scan workers), and the
    client's own marshalling stays serial on the dispatch/receive paths.

    ``window=1`` routes every statement through the serial client layer
    directly, so its virtual totals are byte-identical to un-pipelined
    execution — the parity anchor of the E8 benchmark and the overlap-clock
    tests.
    """

    def __init__(self, client: DatabaseClient, window: int = 1) -> None:
        if window < 1:
            raise ValueError(f"window must be positive, got {window}")
        self.client = client
        self.window = window
        self.timeline: Optional[PipelinedTimeline] = (
            PipelinedTimeline(client.backend.clock, window) if window > 1 else None
        )
        self._pending: List[PendingResult] = []

    # ------------------------------------------------------------------ #

    def submit(self, sql: str, params: Sequence[Any] = ()) -> PendingResult:
        """Execute one statement, scheduling its cost on the overlap timeline.

        With ``window=1`` the statement is charged serially and the returned
        handle is already complete; otherwise the handle resolves at the next
        :meth:`gather`.
        """
        if self.timeline is None:
            value = self.client.execute(sql, params)
            pending = PendingResult(sql, value, done=True)
            self._pending.append(pending)
            return pending
        value, cost = self.client.backend.execute_pipelined(sql, params)
        rows = len(value.rows) if isinstance(value, ResultSet) else 0
        return self._schedule(sql, value, cost, len(params), rows)

    def _schedule(self, sql, value, cost, bound_params, fetched_rows) -> PendingResult:
        """Schedule one executed statement on the overlap timeline and charge
        the client-side marshalling (shared by submit and executemany so both
        paths always account under the same rule)."""
        dispatch = (
            self.client.costs.per_call
            + self.client.costs.per_param * bound_params
        )
        receive = self.client.costs.per_row * fetched_rows
        slot = self.timeline.submit(
            cost, dispatch_seconds=dispatch, receive_seconds=receive,
            label=sql[:60],
        )
        self.client.client_time += dispatch + receive
        self.client.calls += 1
        self.client.rows_fetched += fetched_rows
        pending = PendingResult(sql, value, slot=slot)
        self._pending.append(pending)
        return pending

    def gather(self) -> List[Any]:
        """Complete every in-flight statement; returns results in submit order.

        Commits the scheduled overlap timeline to the backend clock (the
        completion frontier moves to the last statement's completion) and
        resolves every pending handle.
        """
        if self.timeline is not None:
            self.timeline.drain()
        results = [pending._complete() for pending in self._pending]
        self._pending.clear()
        return results

    # ------------------------------------------------------------------ #
    # serial conveniences (submit + gather one statement)
    # ------------------------------------------------------------------ #

    def execute(self, sql: str, params: Sequence[Any] = ()) -> Union[ResultSet, int]:
        """Submit one statement and gather the whole pipeline.

        Anything already in flight completes too — an ``execute`` is a
        synchronization point, exactly like a blocking call on a pipelined
        connection.
        """
        pending = self.submit(sql, params)
        self.gather()
        return pending.result()

    def executemany(self, sql: str, param_rows: Iterable[Sequence[Any]]) -> int:
        """Pipelined counterpart of :meth:`DatabaseClient.executemany`.

        DML parameter rows are split into backend-sized batches and each
        batch's round trip joins the in-flight window; SELECT statements
        (which execute per parameter row) are pipelined row by row.  Gathers
        the pipeline before returning — also on a mid-batch failure, so the
        clock always accounts for the batches that did commit.  With
        ``window=1`` this is the serial client's ``executemany`` verbatim.
        """
        rows = list(param_rows)
        if not rows:
            return 0
        if self.timeline is None:
            return self.client.executemany(sql, rows)
        backend = self.client.backend
        if backend.database.is_select(sql):
            submitted: List[PendingResult] = []
            try:
                for params in rows:
                    submitted.append(self.submit(sql, params))
            finally:
                self.gather()
            return sum(len(pending.result().rows) for pending in submitted)
        total = 0
        try:
            for start in range(0, len(rows), backend.batch_size):
                batch = rows[start:start + backend.batch_size]
                affected, cost = backend.executemany_pipelined(sql, batch)
                total += affected
                self._schedule(
                    sql, affected, cost,
                    sum(len(params) for params in batch), cost.rows_returned,
                )
        finally:
            self.gather()
        return total

    def query(self, sql: str, params: Sequence[Any] = ()) -> ResultSet:
        """Execute a statement that must be a SELECT (a sync point)."""
        result = self.execute(sql, params)
        if not isinstance(result, ResultSet):
            raise ExecutionError("query() requires a SELECT statement")
        return result

    def fetch_record(self, sql: str, params: Sequence[Any] = ()) -> Tuple[Any, ...]:
        """Fetch exactly one record (the paper's per-record microbenchmark)."""
        result = self.query(sql, params)
        if not result.rows:
            raise LookupError("fetch_record: query returned no rows")
        return result.rows[0]

    def begin(self) -> None:
        """Open a transaction (a sync point: gathers the pipeline first, so
        in-flight autocommit statements never land inside the transaction)."""
        self.execute("BEGIN")

    def commit(self) -> None:
        """Commit the open transaction (a sync point)."""
        self.execute("COMMIT")

    def rollback(self) -> None:
        """Roll back the open transaction (a sync point)."""
        self.execute("ROLLBACK")

    def explain(self, sql: str) -> str:
        """EXPLAIN through the wrapped client (introspection; never charged)."""
        return self.client.explain(sql)

    # ------------------------------------------------------------------ #

    @property
    def backend(self) -> SimulatedBackend:
        return self.client.backend

    @property
    def costs(self) -> ClientCosts:
        return self.client.costs

    @property
    def elapsed(self) -> float:
        """Committed virtual time; in-flight statements are not charged yet."""
        return self.client.elapsed

    @property
    def client_time(self) -> float:
        return self.client.client_time

    @property
    def calls(self) -> int:
        return self.client.calls

    @property
    def rows_fetched(self) -> int:
        return self.client.rows_fetched

    @property
    def in_flight(self) -> int:
        """Statements submitted but not yet gathered."""
        return len(self._pending)

    def plan_cache_info(self) -> dict:
        return self.client.plan_cache_info()

    def close(self) -> None:
        """Release the wrapped client's engine resources (idempotent)."""
        self.client.close()

    def __enter__(self) -> "AsyncClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AsyncClient({type(self.client).__name__}, window={self.window}, "
            f"in_flight={len(self._pending)})"
        )


class BridgedClient(DatabaseClient):
    """A JDBC-like bridged driver with higher marshalling costs.

    ``slowdown`` scales the native costs; the paper quotes a factor of two to
    four, the default of 3 sits in the middle of that band.
    """

    api_name = "bridged"

    def __init__(self, backend: SimulatedBackend, slowdown: float = 3.0) -> None:
        if slowdown <= 1.0:
            raise ValueError("the bridged client must be slower than the native one")
        native = ClientCosts(per_call=1.5e-5, per_row=2.0e-6, per_param=5.0e-7)
        super().__init__(
            backend,
            ClientCosts(
                per_call=native.per_call * slowdown,
                per_row=native.per_row * slowdown,
                per_param=native.per_param * slowdown,
            ),
        )
        self.slowdown = slowdown
