"""Partitioned row storage and secondary indexes.

Every table is hash-partitioned by its primary key: a :class:`Table` owns
``n_partitions`` independent :class:`Partition` objects, each holding its own
row list and its own per-partition :class:`HashIndex` instances.  The default
``n_partitions=1`` preserves the historical single-partition behaviour
byte-for-byte (positions, scan order, index views); higher partition counts
give the executor independently scannable shards — the seam the partitioned
access paths in :mod:`repro.relalg.planner` (``PartitionScan``, partition-
pruned ``IndexProbe``, per-partition ``HashJoinBuild``) fan out over.

Partition assignment is deterministic (:func:`stable_hash`, independent of
``PYTHONHASHSEED``) and keyed by the primary key: a single-column primary key
partitions by its value — which is what makes *partition pruning* possible
(an indexed PK equality touches exactly one partition) — a composite primary
key partitions by the tuple of its values, and a table without a primary key
partitions by the whole row.

Two implementation choices keep the hot probe path allocation-free and the
mutation path O(1):

* index buckets are insertion-ordered dicts ``position → None``, so
  :meth:`HashIndex.add` and :meth:`HashIndex.remove` are O(1) and
  :meth:`HashIndex.lookup` returns a *read-only view* over the bucket instead
  of copying a list per probe (positions are partition-local);
* deleted rows leave tombstones (``None`` entries) that scans skip; once
  tombstones dominate a partition, that partition compacts *independently* —
  it rewrites its row list and rebuilds its indexes without touching its
  siblings, so a delete-heavy key range does not force a full-table rebuild.

Cardinality statistics (:class:`TableStatistics`) are maintained on DML: live
row counts per partition are exact counters, per-index distinct-key estimates
derive from the live index buckets, and a monotonically increasing
``mutations`` counter lets callers reason about the staleness of a snapshot
they took earlier (the planner records its estimates at plan time; plans are
deliberately not invalidated by DML).

Transactions hook in at this layer as **per-partition undo chains**
(:class:`Transaction`).  While a transaction is open (``Table.txn`` set by
:class:`~repro.relalg.database.Database` on ``BEGIN``), DML applies directly
— the transaction reads its own writes through the unchanged scan/probe
paths — but each mutation pushes an inverse record onto the undo chain, and
the two side effects that would leak uncommitted state are deferred to
commit: ``Partition.version`` stays at its *committed* value (so the
process-executor shard sync, which forwards shards by version, never ships
uncommitted rows), and tombstone compaction is postponed (compaction
renumbers positions, which would invalidate the undo records).  ``ROLLBACK``
walks the chain in reverse and restores rows, index buckets (at their
original ascending-position slots), live counts, tombstones and the
``mutations`` counter byte-for-byte; :meth:`Table.committed_rows`
reconstructs the committed snapshot of a shard *without* touching live state
— the snapshot-isolated view an in-flight reader (or another session) sees
while the transaction stages DML.
"""

from __future__ import annotations

import bisect
import datetime as _dt
import itertools
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.relalg.errors import ExecutionError, IntegrityError, SchemaError
from repro.relalg.schema import ColumnType, TableSchema

__all__ = [
    "CHUNK_ROWS",
    "ColumnHistogram",
    "HashIndex",
    "OrderedHashIndex",
    "Partition",
    "PositionsView",
    "Table",
    "TableIndex",
    "TableStatistics",
    "Transaction",
    "gather_columns",
    "gather_rows",
    "stable_hash",
]

#: Rows per columnar chunk (see :meth:`Partition.column_chunks`).  Large
#: enough to amortise the per-chunk dispatch of the vectorized scan path,
#: small enough that the per-column value lists of one chunk stay cache
#: friendly.
CHUNK_ROWS = 2048

#: Compact a partition when at least this many tombstones have accumulated …
_COMPACT_MIN_DEAD = 64
#: … and they make up at least this fraction of the partition's row list.
_COMPACT_DEAD_FRACTION = 0.5

_HASH_MASK = 0xFFFFFFFFFFFFFFFF


def gather_rows(
    cols: Sequence[List[Any]], sel: Sequence[int]
) -> List[Tuple[Any, ...]]:
    """Row tuples of the selected positions of a columnar block.

    The transpose counterpart of :meth:`Partition.column_chunks`: one
    C-level comprehension per column plus one ``zip`` instead of a Python
    loop per surviving row.  Shared by the vectorized scan consumers (the
    planner's chunk seam and the process-pool workers).
    """
    return list(zip(*([column[i] for i in sel] for column in cols)))


def gather_columns(
    rows: Sequence[Tuple[Any, ...]], slots: Iterable[int], width: int
) -> List[Optional[List[Any]]]:
    """Per-slot value lists of a row block, populated only for ``slots``.

    The inverse gather: batch expression nodes evaluate over columns, so
    consumers of already-materialised row tuples (batch aggregation over
    joined rows, batch hash-join key evaluation over chunk survivors) lift
    just the referenced slots into columns — one comprehension per slot,
    not one per row.
    """
    cols: List[Optional[List[Any]]] = [None] * width
    for j in slots:
        cols[j] = [row[j] for row in rows]
    return cols


def stable_hash(value: Any) -> int:
    """A deterministic hash for partition assignment.

    Unlike the builtin ``hash``, the result does not depend on
    ``PYTHONHASHSEED`` for strings, timestamps or containers, so partition
    layouts are reproducible across processes (the differential fuzzer and
    the benchmark baselines rely on this).  Numeric cross-type equality is
    preserved the way ``=`` sees it: ``3``, ``3.0`` and ``True``/``1`` land
    in the same partition, so a pruned probe can never miss a matching row.
    """
    if value is None:
        return 11
    if isinstance(value, float) and value != value:
        # NaN: hash(nan) is id-based on CPython 3.10+, and NaN never equals
        # anything (so no probe can match it) — any fixed bucket will do.
        return 0x7FF8
    if isinstance(value, (bool, int, float)):
        # CPython's numeric hash is unsalted and equal across int/float/bool
        # for equal values — exactly the pruning contract.
        return hash(value)
    if isinstance(value, str):
        return zlib.crc32(value.encode("utf-8"))
    if isinstance(value, (tuple, list)):
        acc = 0x345678
        for item in value:
            acc = ((acc * 1000003) ^ stable_hash(item)) & _HASH_MASK
        return acc
    if isinstance(value, _dt.datetime):
        if value.tzinfo is not None:
            value = value.astimezone(_dt.timezone.utc)
        return zlib.crc32(value.isoformat().encode("utf-8"))
    return zlib.crc32(repr(value).encode("utf-8"))


class PositionsView:
    """A read-only, insertion-ordered view of one index bucket.

    The view aliases live index state — it must not be mutated and should be
    consumed before the index is modified (the executor materialises its
    results before any data modification can run).  It compares equal to any
    sequence with the same elements in the same order, so existing callers
    that compared the old list results keep working.
    """

    __slots__ = ("_positions",)

    def __init__(self, positions: Dict[int, None]) -> None:
        self._positions = positions

    def __iter__(self) -> Iterator[int]:
        return iter(self._positions)

    def __len__(self) -> int:
        return len(self._positions)

    def __contains__(self, position: object) -> bool:
        return position in self._positions

    def __getitem__(self, index: int) -> int:
        return list(self._positions)[index]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, PositionsView):
            return list(self._positions) == list(other._positions)
        if isinstance(other, (list, tuple)):
            return list(self._positions) == list(other)
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PositionsView({list(self._positions)!r})"


_EMPTY_VIEW = PositionsView({})


#: Canonical bucket key shared by every NaN index entry.  ``NaN != NaN``, so
#: raw NaN keys bucket by object identity: live mutation creates one bucket
#: per inserted object while a WAL replay or compaction rebuild may share one
#: decoded object across rows — two observably different index states for the
#: same logical table.  Funnelling every NaN through one module-level key
#: makes both paths converge.  Equality probes stay reference-faithful: a
#: user-supplied NaN can only reach a bucket via ``==`` after the identity
#: check fails, and ``NaN == NaN`` is false, so ``col = NaN`` still matches
#: nothing.
_NAN_KEY = float("nan")


def _bucket_key(value: Any) -> Any:
    if isinstance(value, float) and value != value:
        return _NAN_KEY
    return value


class HashIndex:
    """A hash index over one column of one partition.

    Positions are partition-local row-list offsets; cross-partition access
    goes through the owning :class:`TableIndex`.
    """

    def __init__(self, name: str, column: str) -> None:
        self.name = name
        self.column = column
        self._buckets: Dict[Any, Dict[int, None]] = {}

    def add(self, value: Any, position: int) -> None:
        """Register that the row at ``position`` has ``value`` in the column."""
        value = _bucket_key(value)
        bucket = self._buckets.get(value)
        if bucket is None:
            self._buckets[value] = {position: None}
        else:
            bucket[position] = None

    def remove(self, value: Any, position: int) -> None:
        """Remove one (value, position) entry; missing entries are ignored."""
        value = _bucket_key(value)
        bucket = self._buckets.get(value)
        if bucket is not None and position in bucket:
            del bucket[position]
            if not bucket:
                del self._buckets[value]

    def lookup(self, value: Any) -> PositionsView:
        """Row positions whose indexed column equals ``value`` (a read-only
        view; no copy is made)."""
        bucket = self._buckets.get(value)
        if bucket is None:
            return _EMPTY_VIEW
        return PositionsView(bucket)

    def restore(self, value: Any, position: int) -> None:
        """Re-insert an entry at its original ascending-position bucket slot.

        Bucket iteration order is ascending-position everywhere else in the
        engine (adds append at ever-growing positions, compaction rebuilds in
        row order), and probe results inherit that order.  A rollback that
        resurrects a deleted row must therefore splice the old position back
        into the middle of its bucket, not append it at the end — otherwise
        a rolled-back transaction would leave observably reordered probe
        results behind.
        """
        value = _bucket_key(value)
        bucket = self._buckets.get(value)
        if bucket is None:
            self._buckets[value] = {position: None}
            return
        if next(reversed(bucket)) < position:
            bucket[position] = None
            return
        rebuilt: Dict[int, None] = {}
        spliced = False
        for existing in bucket:
            if not spliced and existing > position:
                rebuilt[position] = None
                spliced = True
            rebuilt[existing] = None
        bucket.clear()
        bucket.update(rebuilt)

    def clear(self) -> None:
        """Drop every entry (used when the owning partition compacts)."""
        self._buckets.clear()

    def distinct_count(self) -> int:
        """Number of distinct indexed keys currently live in this partition."""
        return len(self._buckets)

    def __len__(self) -> int:
        return sum(len(positions) for positions in self._buckets.values())


#: Sentinel greater than any partition-local position; ``(value, _AFTER_LAST)``
#: sorts after every real ``(value, position)`` run entry.
_AFTER_LAST = float("inf")


class OrderedHashIndex(HashIndex):
    """A hash index that additionally maintains a sorted run of its entries.

    ``run`` is the partition's live ``(value, position)`` pairs sorted by
    value, with ties broken by position (the tuple order); range predicates
    bisect it instead of scanning.  NULL and NaN values are kept out of the
    run — they would poison ``bisect``'s total-order assumption, and neither
    can ever satisfy a range predicate (``col > x`` is UNKNOWN for NULL and
    false for NaN) — and tracked in the ``nulls``/``nans`` position sets
    instead so ORDER BY pushdown can still place those rows.

    Equality probes, bucket iteration order and
    :func:`~repro.relalg.wal.state_fingerprint` are untouched: the inherited
    ``_buckets`` mapping is maintained exactly as in :class:`HashIndex`.
    """

    def __init__(self, name: str, column: str) -> None:
        super().__init__(name, column)
        self.run: List[Tuple[Any, int]] = []
        self.nulls: Dict[int, None] = {}
        self.nans: Dict[int, None] = {}

    def _run_add(self, value: Any, position: int) -> None:
        if value is None:
            self.nulls[position] = None
        elif isinstance(value, float) and value != value:
            self.nans[position] = None
        else:
            bisect.insort(self.run, (value, position))

    def add(self, value: Any, position: int) -> None:
        super().add(value, position)
        self._run_add(value, position)

    def remove(self, value: Any, position: int) -> None:
        super().remove(value, position)
        if value is None:
            self.nulls.pop(position, None)
        elif isinstance(value, float) and value != value:
            self.nans.pop(position, None)
        else:
            at = bisect.bisect_left(self.run, (value, position))
            if at < len(self.run) and self.run[at] == (value, position):
                del self.run[at]

    def restore(self, value: Any, position: int) -> None:
        # ``insort`` splices the resurrected entry straight back into its
        # value/position slot, so no bucket-style rebuild is needed.
        super().restore(value, position)
        self._run_add(value, position)

    def clear(self) -> None:
        super().clear()
        self.run.clear()
        self.nulls.clear()
        self.nans.clear()

    def range_slice(
        self, lo: Any, lo_incl: bool, hi: Any, hi_incl: bool
    ) -> List[Tuple[Any, int]]:
        """The run's ``(value, position)`` entries inside the interval.

        ``None`` bounds are unbounded on that side.  Callers must pre-check
        that non-``None`` bounds are comparable with the run's value class
        (see :meth:`Table.range_chunks`) — ``bisect`` on an incomparable
        bound would raise a raw ``TypeError`` mid-probe.
        """
        run = self.run
        if lo is None:
            start = 0
        elif lo_incl:
            start = bisect.bisect_left(run, (lo,))
        else:
            start = bisect.bisect_right(run, (lo, _AFTER_LAST))
        if hi is None:
            end = len(run)
        elif hi_incl:
            end = bisect.bisect_right(run, (hi, _AFTER_LAST))
        else:
            end = bisect.bisect_left(run, (hi,))
        return run[start:end]


class Partition:
    """One shard of a table: a row list plus per-partition hash indexes."""

    __slots__ = (
        "rows", "live_count", "indexes", "version", "_chunks", "_chunk_size",
    )

    def __init__(self) -> None:
        self.rows: List[Optional[Tuple[Any, ...]]] = []
        self.live_count = 0
        #: lowered column name → partition-local :class:`HashIndex`.
        self.indexes: Dict[str, HashIndex] = {}
        #: Lazily built columnar chunk cache (see :meth:`column_chunks`);
        #: ``None`` whenever the row list has mutated since the last build.
        self._chunks: Optional[
            List[Tuple[List[Tuple[Any, ...]], List[List[Any]]]]
        ] = None
        self._chunk_size = 0
        #: Monotonic **committed-state** counter of this shard, bumped by
        #: every autocommit insert/delete, by compaction, and once per shard
        #: at transaction COMMIT — never while a transaction merely stages
        #: DML (a rollback then leaves the counter, correctly, untouched).
        #: The process-pool executor (:mod:`repro.relalg.parallel`) compares
        #: it against the version a worker last received to decide whether
        #: the shard must be re-routed to its owning worker — the partition-
        #: granular staleness seam, forwarding only committed versions.
        self.version = 0

    @property
    def dead_count(self) -> int:
        return len(self.rows) - self.live_count

    def scan(self) -> Iterator[Tuple[Any, ...]]:
        """Iterate over this partition's live rows in insertion order."""
        for row in self.rows:
            if row is not None:
                yield row

    def invalidate_chunks(self) -> None:
        """Discard the columnar chunk cache (call after any row mutation)."""
        self._chunks = None

    def column_chunks(
        self, chunk_size: int = CHUNK_ROWS,
    ) -> List[Tuple[List[Tuple[Any, ...]], List[List[Any]]]]:
        """Live rows as ``(row_block, column_lists)`` chunks, insertion order.

        Each chunk covers at most ``chunk_size`` live rows; ``row_block`` is
        the list of row tuples and ``column_lists[j][i] == row_block[i][j]``.
        Tombstones are squeezed out at build time, so chunks see exactly the
        rows :meth:`scan` would yield, in the same order.  The result is
        cached until the next mutation (every DML/compaction/rollback path
        calls :meth:`invalidate_chunks`); a different ``chunk_size`` forces a
        rebuild.
        """
        chunks = self._chunks
        if chunks is None or self._chunk_size != chunk_size:
            live = [row for row in self.rows if row is not None]
            chunks = []
            for start in range(0, len(live), chunk_size):
                block = live[start:start + chunk_size]
                chunks.append(
                    (block, [list(column) for column in zip(*block)])
                )
            self._chunks = chunks
            self._chunk_size = chunk_size
        return chunks

    def compact(self, column_indexes: Dict[str, int]) -> int:
        """Drop tombstones and rebuild this partition's indexes in place.

        The :class:`HashIndex` objects are cleared and refilled (not
        replaced), so :class:`TableIndex` facades that alias them stay valid.
        """
        dead = self.dead_count
        if not dead:
            return 0
        self.version += 1
        self._chunks = None
        self.rows = [row for row in self.rows if row is not None]
        for index in self.indexes.values():
            index.clear()
        for position, row in enumerate(self.rows):
            for key, index in self.indexes.items():
                index.add(row[column_indexes[key]], position)
        return dead

    def maybe_compact(self, column_indexes: Dict[str, int]) -> int:
        dead = self.dead_count
        if dead >= _COMPACT_MIN_DEAD and (
            dead >= len(self.rows) * _COMPACT_DEAD_FRACTION
        ):
            return self.compact(column_indexes)
        return 0


class TableIndex:
    """A logical table index: one :class:`HashIndex` per partition.

    For single-partition tables :meth:`lookup` delegates straight to the
    partition's index (returning the same :class:`PositionsView` the
    historical flat index returned).  For partitioned tables positions are
    partition-local and therefore meaningless without their partition id, so
    cross-partition reads must go through :meth:`Table.probe_chunks` /
    :meth:`Table.lookup` — :meth:`lookup` refuses rather than return a shape
    that looks like the single-partition one but is not.
    """

    __slots__ = ("name", "column", "column_index", "parts", "ordered")

    def __init__(self, name: str, column: str, column_index: int,
                 parts: List[HashIndex], ordered: bool = False) -> None:
        self.name = name
        self.column = column
        self.column_index = column_index
        self.parts = parts
        #: Whether the per-partition parts are :class:`OrderedHashIndex`
        #: instances maintaining sorted runs (``CREATE INDEX ... ORDERED``).
        self.ordered = ordered

    def lookup(self, value: Any) -> PositionsView:
        if len(self.parts) == 1:
            return self.parts[0].lookup(value)
        raise SchemaError(
            f"index {self.name!r} spans {len(self.parts)} partitions and its "
            f"positions are partition-local; probe rows through "
            f"Table.probe_chunks()/Table.lookup() instead"
        )

    def distinct_count(self, disjoint: bool = False) -> int:
        """Distinct-key estimate from the live per-partition buckets.

        ``disjoint=True`` sums the per-partition counts — exact when the
        indexed column is the partition key (every key lives in exactly one
        shard).  Otherwise a key may appear in several shards, so the sum
        would *over*-count distinct keys and make probes look cheaper than
        they are (``rows / distinct`` shrinks); the per-partition maximum is
        a lower bound on the true distinct count, i.e. the conservative bias
        for probe-cost estimates.
        """
        counts = [part.distinct_count() for part in self.parts]
        if disjoint:
            return sum(counts)
        return max(counts, default=0)

    def distinct_counts_per_partition(self) -> List[int]:
        return [part.distinct_count() for part in self.parts]

    def __len__(self) -> int:
        return sum(len(part) for part in self.parts)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "ordered, " if self.ordered else ""
        return (
            f"TableIndex({self.name!r}, column={self.column!r}, "
            f"{kind}partitions={len(self.parts)})"
        )


#: Buckets per equi-width histogram.  Small enough that building one is a
#: handful of bisections per partition run, large enough that a selective
#: range predicate lands in a fraction of one bucket.
_HISTOGRAM_BUCKETS = 16


@dataclass
class ColumnHistogram:
    """An equi-width value histogram of one ordered-indexed numeric column.

    Built from the live sorted runs (NULL/NaN values are excluded from
    ``total`` but still counted in ``table_rows``, so an interval selectivity
    correctly discounts rows that can never satisfy a range predicate).
    ``counts[i]`` covers ``[lo + i*width, lo + (i+1)*width)`` with the last
    bucket closed at ``hi``.
    """

    column: str
    lo: float
    hi: float
    width: float
    counts: List[int]
    total: int
    table_rows: int

    def _cdf(self, x: float) -> float:
        """Estimated number of run values strictly below ``x`` (linear
        interpolation inside the bucket ``x`` falls in)."""
        if x <= self.lo:
            return 0.0
        if x >= self.hi or self.width <= 0:
            return float(self.total)
        offset = (x - self.lo) / self.width
        index = min(int(offset), len(self.counts) - 1)
        cum = float(sum(self.counts[:index]))
        return cum + self.counts[index] * (offset - index)

    def estimate_rows(self, lo: Optional[float], hi: Optional[float]) -> float:
        """Estimated live rows with a value in ``[lo, hi]`` (``None`` =
        unbounded; bound inclusivity is below histogram resolution)."""
        if self.total == 0:
            return 0.0
        if self.width <= 0:
            # Degenerate single-value histogram: all values equal ``lo``.
            inside = (lo is None or lo <= self.lo) and (
                hi is None or hi >= self.hi
            )
            return float(self.total) if inside else 0.0
        upper = float(self.total) if hi is None else self._cdf(hi)
        lower = 0.0 if lo is None else self._cdf(lo)
        return max(0.0, upper - lower)

    def estimate_fraction(
        self, lo: Optional[float], hi: Optional[float]
    ) -> float:
        """``estimate_rows`` as a fraction of all live rows (NULL/NaN rows
        count in the denominator — they never match a range predicate)."""
        if self.table_rows <= 0:
            return 0.0
        return min(1.0, self.estimate_rows(lo, hi) / self.table_rows)


@dataclass
class TableStatistics:
    """A point-in-time cardinality snapshot of one table.

    ``mutations`` is the table's DML counter at snapshot time; comparing it
    with the live counter tells how stale the snapshot has become (e.g. after
    a DELETE-heavy workload ran against a plan whose estimates were recorded
    earlier).
    """

    table: str
    n_partitions: int
    row_count: int
    partition_rows: List[int] = field(default_factory=list)
    #: lowered indexed column → distinct-key estimate across all partitions.
    index_distinct: Dict[str, int] = field(default_factory=dict)
    #: lowered ordered-indexed numeric column → equi-width value histogram.
    histograms: Dict[str, ColumnHistogram] = field(default_factory=dict)
    #: lowered column names carrying an ordered index at snapshot time.
    ordered_columns: List[str] = field(default_factory=list)
    mutations: int = 0

    def distinct_for(self, column: str) -> Optional[int]:
        return self.index_distinct.get(column.lower())

    def histogram_for(self, column: str) -> Optional[ColumnHistogram]:
        return self.histograms.get(column.lower())


class Transaction:
    """The undo state of one open transaction.

    The database opens a transaction on ``BEGIN`` by pointing every table's
    ``txn`` attribute at one of these; the tables then push inverse records
    here as DML applies.  Records are kept in application order and undone in
    reverse, grouped implicitly per partition (each record names its
    partition — the per-partition undo chain seeded off the partition's
    committed version):

    * ``("ins", table, pid, start, count)`` — ``count`` rows were appended to
      partition ``pid`` starting at position ``start``.  Undo removes their
      index entries and truncates the rows (reverse order guarantees they sit
      at the tail when their record is reached).
    * ``("del", table, pid, position, row)`` — ``row`` was tombstoned at
      ``position``.  Undo restores the row, its index entries (at their
      original bucket slots) and the live count.

    ``Partition.version`` is *not* bumped while staging — it advances only in
    :meth:`commit`, so the version counter always describes committed state
    and a shard forwarded by version to a worker process can never contain
    uncommitted rows.  Deferred compaction runs at commit time too.
    """

    __slots__ = ("txn_id", "undo", "_touched", "_mutations_before")

    def __init__(self, txn_id: int) -> None:
        self.txn_id = txn_id
        self.undo: List[Tuple[Any, ...]] = []
        #: id(table) → (table, set of touched partition ids).
        self._touched: Dict[int, Tuple["Table", set]] = {}
        self._mutations_before: Dict[int, int] = {}

    # -- staging ----------------------------------------------------------------

    def _touch(self, table: "Table", pid: int) -> None:
        entry = self._touched.get(id(table))
        if entry is None:
            self._touched[id(table)] = (table, {pid})
            self._mutations_before[id(table)] = table.mutations
        else:
            entry[1].add(pid)

    def note_insert(self, table: "Table", pid: int, start: int, count: int) -> None:
        self._touch(table, pid)
        self.undo.append(("ins", table, pid, start, count))

    def note_delete(
        self, table: "Table", pid: int, position: int, row: Tuple[Any, ...]
    ) -> None:
        self._touch(table, pid)
        self.undo.append(("del", table, pid, position, row))

    @property
    def staged(self) -> bool:
        """Whether the transaction has applied any uncommitted DML."""
        return bool(self.undo)

    def touches(self, table: "Table") -> bool:
        return id(table) in self._touched

    def touched_partitions(self, table: "Table") -> set:
        entry = self._touched.get(id(table))
        return entry[1] if entry is not None else set()

    # -- resolution -------------------------------------------------------------

    def commit(self) -> None:
        """Publish the staged state: bump versions, run deferred compaction."""
        for table, pids in self._touched.values():
            column_indexes = table._index_column_map()
            for pid in sorted(pids):
                partition = table.partitions[pid]
                partition.version += 1
                partition.maybe_compact(column_indexes)
        self.undo.clear()
        self._touched.clear()
        self._mutations_before.clear()

    def rollback(self) -> None:
        """Undo every staged mutation, restoring committed state exactly."""
        for record in reversed(self.undo):
            if record[0] == "ins":
                _, table, pid, start, count = record
                partition = table.partitions[pid]
                if len(partition.rows) != start + count:
                    raise ExecutionError(
                        f"transaction undo corrupted: partition {pid} of table "
                        f"{table.name!r} has {len(partition.rows)} rows where "
                        f"the staged batch ends at {start + count}"
                    )
                for offset in range(count):
                    position = start + offset
                    row = partition.rows[position]
                    # A row inserted and then deleted inside the same
                    # transaction was already resurrected by the delete's
                    # (later, hence earlier-undone) record.
                    for index in table.indexes.values():
                        index.parts[pid].remove(row[index.column_index], position)
                del partition.rows[start:]
                partition.live_count -= count
                partition.invalidate_chunks()
            else:
                _, table, pid, position, row = record
                partition = table.partitions[pid]
                partition.rows[position] = row
                partition.live_count += 1
                partition.invalidate_chunks()
                for index in table.indexes.values():
                    index.parts[pid].restore(row[index.column_index], position)
        self.undo.clear()
        for key, (table, _pids) in self._touched.items():
            table.mutations = self._mutations_before[key]
        self._touched.clear()
        self._mutations_before.clear()


#: Process-global table identities (see :attr:`Table.uid`).
_TABLE_UIDS = itertools.count(1)


class Table:
    """One table: a schema, its hash-partitioned rows and its indexes."""

    def __init__(self, schema: TableSchema, n_partitions: int = 1) -> None:
        if n_partitions < 1:
            raise SchemaError(
                f"table {schema.name!r}: n_partitions must be >= 1, "
                f"got {n_partitions}"
            )
        #: Process-globally unique identity of this table object.  Worker
        #: processes key their shard replicas by it, so two tables with the
        #: same name (a DROP/CREATE cycle, or tables of different databases
        #: sharing one executor pool) can never alias each other's data.
        self.uid = next(_TABLE_UIDS)
        self.schema = schema
        self.n_partitions = n_partitions
        self.partitions: List[Partition] = [Partition() for _ in range(n_partitions)]
        #: lowered column name → logical :class:`TableIndex`.
        self.indexes: Dict[str, TableIndex] = {}
        #: DML counter: rows inserted + rows deleted over the table lifetime.
        self.mutations = 0
        #: The open :class:`Transaction` staging DML against this table, or
        #: ``None`` (autocommit).  Set by the database on BEGIN/COMMIT/ROLLBACK.
        self.txn: Optional[Transaction] = None
        self._column_indexes: Dict[str, int] = {}
        pk = schema.primary_key_columns()
        #: Column positions making up the partition key (``None`` → whole row).
        self._partition_key_slots: Optional[List[int]] = (
            [schema.column_index(c.name) for c in pk] if pk else None
        )
        #: Lowered name of the single-column primary key: equality probes on
        #: it are partition-prunable.  ``None`` for composite/absent keys.
        self.partition_column: Optional[str] = (
            pk[0].name.lower() if len(pk) == 1 else None
        )
        self._primary_index: Optional[TableIndex] = None
        if len(pk) == 1:
            self._primary_index = self._register_index(
                f"{schema.name}_pk", pk[0].name
            )

    # -- properties -------------------------------------------------------------

    @property
    def name(self) -> str:
        return self.schema.name

    @property
    def row_count(self) -> int:
        """Number of live (not deleted) rows across all partitions."""
        return sum(partition.live_count for partition in self.partitions)

    @property
    def dead_count(self) -> int:
        """Number of tombstones currently in the partitions' row lists."""
        return sum(partition.dead_count for partition in self.partitions)

    @property
    def rows(self) -> List[Optional[Tuple[Any, ...]]]:
        """The raw row list (including tombstones).

        Single-partition tables expose their one partition's list directly —
        the historical storage layout, aliased, positions stable.  For
        partitioned tables this is a concatenated *copy* in partition order,
        intended for tests and debugging; executors use the per-partition
        access methods instead.
        """
        if self.n_partitions == 1:
            return self.partitions[0].rows
        combined: List[Optional[Tuple[Any, ...]]] = []
        for partition in self.partitions:
            combined.extend(partition.rows)
        return combined

    # -- partitioning -----------------------------------------------------------

    def partition_of_key(self, key: Any) -> int:
        """The partition an equality probe on the partition column must hit."""
        if self.n_partitions == 1:
            return 0
        return stable_hash(key) % self.n_partitions

    def _partition_of_row(self, row: Tuple[Any, ...]) -> int:
        if self.n_partitions == 1:
            return 0
        slots = self._partition_key_slots
        if slots is None:
            key: Any = row
        elif len(slots) == 1:
            key = row[slots[0]]
        else:
            key = tuple(row[s] for s in slots)
        return stable_hash(key) % self.n_partitions

    # -- modification -----------------------------------------------------------

    def insert(self, values: Sequence[Any]) -> int:
        """Validate and insert one positional row; returns its partition-local
        position.

        Positions are only stable until the next compaction of the owning
        partition; they are an internal storage detail, not a durable row id.
        """
        row = self.schema.validate_row(values)
        primary = self._primary_index
        pid = self._partition_of_row(row)
        if primary is not None:
            key = row[primary.column_index]
            if primary.parts[pid].lookup(key):
                raise IntegrityError(
                    f"duplicate primary key {key!r} in table {self.name!r}"
                )
        partition = self.partitions[pid]
        position = len(partition.rows)
        partition.rows.append(row)
        partition.live_count += 1
        partition.invalidate_chunks()
        if self.txn is None:
            partition.version += 1
        else:
            self.txn.note_insert(self, pid, position, 1)
        for index in self.indexes.values():
            index.parts[pid].add(row[index.column_index], position)
        self.mutations += 1
        return position

    def insert_mapping(self, mapping: Dict[str, Any]) -> int:
        """Insert a row given as a column→value mapping."""
        return self.insert(self.schema.row_from_mapping(mapping))

    def insert_many(self, rows: Iterable[Sequence[Any]]) -> int:
        """Validate and insert a batch of positional rows; returns the count.

        The batch path defers index maintenance until the whole batch is
        appended: every row is validated first (schema coercion plus primary
        key uniqueness against both the stored rows and the batch itself),
        then each partition's row list grows in one ``extend`` and each
        per-partition index is updated in a single pass.  Because all
        validation — including the partition assignment of every row —
        happens before any mutation, a failing row leaves every partition,
        its indexes and its tombstone accounting exactly as they were: the
        batch is atomic even when its rows span partitions.
        """
        validated = [self.schema.validate_row(values) for values in rows]
        if not validated:
            return 0
        primary = self._primary_index
        assignments = [self._partition_of_row(row) for row in validated]
        if primary is not None:
            key_index = primary.column_index
            seen = set()
            for row, pid in zip(validated, assignments):
                key = row[key_index]
                if key in seen or primary.parts[pid].lookup(key):
                    raise IntegrityError(
                        f"duplicate primary key {key!r} in table {self.name!r}"
                    )
                seen.add(key)
        per_partition: Dict[int, List[Tuple[Any, ...]]] = {}
        for row, pid in zip(validated, assignments):
            per_partition.setdefault(pid, []).append(row)
        for pid, batch in per_partition.items():
            partition = self.partitions[pid]
            start = len(partition.rows)
            partition.rows.extend(batch)
            partition.live_count += len(batch)
            partition.invalidate_chunks()
            if self.txn is None:
                partition.version += 1
            else:
                self.txn.note_insert(self, pid, start, len(batch))
            for index in self.indexes.values():
                column_index = index.column_index
                add = index.parts[pid].add
                for offset, row in enumerate(batch):
                    add(row[column_index], start + offset)
        self.mutations += len(validated)
        return len(validated)

    def delete_where(
        self,
        predicate,
        collect: Optional[List[Tuple[Any, ...]]] = None,
    ) -> int:
        """Delete all live rows for which ``predicate(row_tuple)`` is true.

        Each partition checks its own tombstone ratio afterwards and compacts
        independently.  Inside a transaction both side effects are deferred
        to commit: versions stay at their committed value and compaction is
        postponed (it would renumber the positions the undo chain records).
        ``collect``, when given, receives the deleted row images in deletion
        order (partition-major, position order) — the write-ahead log records
        them for deterministic replay.
        """
        column_indexes = self._index_column_map()
        txn = self.txn
        deleted = 0
        for pid, partition in enumerate(self.partitions):
            partition_deleted = 0
            for position, row in enumerate(partition.rows):
                if row is None:
                    continue
                if predicate(row):
                    partition.rows[position] = None
                    partition.live_count -= 1
                    for index in self.indexes.values():
                        index.parts[pid].remove(row[index.column_index], position)
                    if txn is not None:
                        txn.note_delete(self, pid, position, row)
                    if collect is not None:
                        collect.append(row)
                    partition_deleted += 1
            if partition_deleted:
                partition.invalidate_chunks()
                if txn is None:
                    partition.version += 1
                    partition.maybe_compact(column_indexes)
            deleted += partition_deleted
        self.mutations += deleted
        return deleted

    def compact(self) -> int:
        """Drop tombstones in every partition; returns the removed count."""
        column_indexes = self._index_column_map()
        return sum(
            partition.compact(column_indexes) for partition in self.partitions
        )

    def _index_column_map(self) -> Dict[str, int]:
        return {key: index.column_index for key, index in self.indexes.items()}

    # -- indexes ----------------------------------------------------------------

    def _register_index(
        self, name: str, column: str, ordered: bool = False
    ) -> TableIndex:
        column_name = self.schema.column(column).name
        key = column_name.lower()
        column_index = self.schema.column_index(column_name)
        part_cls = OrderedHashIndex if ordered else HashIndex
        parts: List[HashIndex] = []
        for partition in self.partitions:
            part = part_cls(name=name, column=column_name)
            partition.indexes[key] = part
            parts.append(part)
        table_index = TableIndex(
            name, column_name, column_index, parts, ordered=ordered
        )
        self.indexes[key] = table_index
        return table_index

    def create_index(
        self, name: str, column: str, ordered: bool = False
    ) -> TableIndex:
        """Create (and backfill) a hash index on ``column``.

        ``ordered=True`` creates an :class:`OrderedHashIndex` per partition:
        equality probes behave identically, but each partition additionally
        maintains a sorted run, enabling range probes and ORDER BY pushdown.
        """
        column_name = self.schema.column(column).name
        if column_name.lower() in self.indexes:
            raise SchemaError(
                f"table {self.name!r} already has an index on column "
                f"{column_name!r}"
            )
        table_index = self._register_index(name, column_name, ordered=ordered)
        column_index = table_index.column_index
        for partition, part in zip(self.partitions, table_index.parts):
            for position, row in enumerate(partition.rows):
                if row is not None:
                    part.add(row[column_index], position)
        return table_index

    def drop_index(self, column: str) -> None:
        """Remove the index on ``column`` (missing indexes are ignored).

        The auto-created primary-key index is structural — uniqueness
        enforcement and partition pruning read it on every insert — so
        dropping it is refused rather than leaving a stale, unmaintained
        index behind.
        """
        key = column.lower()
        index = self.indexes.get(key)
        if index is None:
            return
        if index is self._primary_index:
            raise SchemaError(
                f"cannot drop the primary-key index of table {self.name!r}"
            )
        del self.indexes[key]
        for partition in self.partitions:
            partition.indexes.pop(key, None)

    def index_for(self, column: str) -> Optional[TableIndex]:
        """The logical index on ``column`` if one exists."""
        return self.indexes.get(column.lower())

    def ordered_index_for(self, column: str) -> Optional[TableIndex]:
        """The ordered index on ``column`` if one exists."""
        index = self.indexes.get(column.lower())
        if index is not None and index.ordered:
            return index
        return None

    def _bound_compatible(self, column: str, bound: Any) -> bool:
        """Whether ``bound`` shares the stored value class of ``column``.

        The runs hold schema-coerced values of a single class per column, so
        an incomparable bound (e.g. a string placeholder bound against an
        INTEGER column) would raise a raw ``TypeError`` inside ``bisect``;
        callers fall back to the filtered scan instead, which reproduces the
        reference engine's typed per-row comparison error exactly.
        """
        column_type = self.schema.column(column).type
        if column_type in (
            ColumnType.INTEGER, ColumnType.FLOAT, ColumnType.BOOLEAN
        ):
            return isinstance(bound, (bool, int, float))
        if column_type is ColumnType.VARCHAR:
            return isinstance(bound, str)
        return isinstance(bound, _dt.datetime)

    # -- access -----------------------------------------------------------------

    def scan(self) -> Iterator[Tuple[Any, ...]]:
        """Iterate over all live rows, partition-major, in insertion order."""
        if self.n_partitions == 1:
            return self.partitions[0].scan()
        return self._scan_partitioned()

    def _scan_partitioned(self) -> Iterator[Tuple[Any, ...]]:
        for partition in self.partitions:
            for row in partition.rows:
                if row is not None:
                    yield row

    def scan_chunks(self) -> Iterator[Tuple[int, Iterator[Tuple[Any, ...]]]]:
        """Per-partition scan: yields ``(partition_id, live-row iterator)``."""
        for pid, partition in enumerate(self.partitions):
            yield pid, partition.scan()

    def partition_snapshot(self, pid: int) -> Tuple[int, List[Tuple[Any, ...]]]:
        """``(version, live rows)`` of one shard, as plain picklable data.

        The rows come out in the shard's insertion order — exactly the order
        :meth:`scan_chunks` would deliver them — so a worker process scanning
        the snapshot reproduces the sequential executor's row order for that
        partition byte for byte.

        The snapshot is always the **committed** state: while a transaction
        stages DML, the shard's uncommitted rows are filtered out through the
        undo chain (:meth:`committed_rows`), so the version/rows pair that
        gets forwarded to a worker process can never contain state that a
        rollback would retract.  (The in-process executors additionally fall
        back to sequential scans mid-transaction so the *local* session keeps
        reading its own writes.)
        """
        partition = self.partitions[pid]
        txn = self.txn
        if txn is not None and pid in txn.touched_partitions(self):
            return partition.version, self.committed_rows(pid)
        return partition.version, [
            row for row in partition.rows if row is not None
        ]

    def partition_snapshot_columns(
        self, pid: int,
    ) -> Tuple[int, int, List[List[Any]]]:
        """``(version, live-row count, per-column value lists)`` of one shard.

        The columnar form of :meth:`partition_snapshot`, shipped to process
        workers: ``columns[j][i]`` is column ``j`` of the shard's ``i``-th
        live row (committed state, same order guarantees).  Shipping a fixed
        number of flat value lists instead of one tuple per row trims the
        per-row container overhead out of the pickled sync payload and lets
        workers run the vectorized scan without materialising rows that the
        driving filter rejects.
        """
        version, rows = self.partition_snapshot(pid)
        if not rows:
            return version, 0, [[] for _ in self.schema.columns]
        return version, len(rows), [list(column) for column in zip(*rows)]

    def committed_rows(self, pid: int) -> List[Tuple[Any, ...]]:
        """Live rows of one shard as of the last commit.

        With no open transaction this is exactly the live scan.  With one
        open, the shard's slice of the undo chain is applied in reverse to a
        *copy* of the row list — reconstructing, without touching live state,
        the snapshot-isolated view another session (or a forwarded worker
        shard) sees while the transaction stages DML.
        """
        partition = self.partitions[pid]
        txn = self.txn
        if txn is None or pid not in txn.touched_partitions(self):
            return [row for row in partition.rows if row is not None]
        rows = list(partition.rows)
        for record in reversed(txn.undo):
            if record[1] is not self or record[2] != pid:
                continue
            if record[0] == "ins":
                start, count = record[3], record[4]
                if len(rows) != start + count:
                    raise ExecutionError(
                        f"transaction undo corrupted: partition {pid} of "
                        f"table {self.name!r} has {len(rows)} rows where the "
                        f"staged batch ends at {start + count}"
                    )
                del rows[start:]
            else:
                rows[record[3]] = record[4]
        return [row for row in rows if row is not None]

    def probe_chunks(
        self, column: str, key: Any
    ) -> Optional[List[Tuple[int, List[Tuple[Any, ...]]]]]:
        """Indexed equality probe, pruned to one partition when possible.

        Returns ``(partition_id, matching live rows)`` pairs, or ``None``
        when no index exists on ``column`` (the caller falls back to a
        filtered scan).  A probe on the partition column touches exactly one
        partition; any other indexed column probes every partition's local
        index.
        """
        table_index = self.indexes.get(column.lower())
        if table_index is None:
            return None
        # NB: a NULL key is a legitimate bucket lookup here (secondary
        # indexes store NULL entries; ``Table.lookup`` relies on it) — the
        # no-match-on-NULL semantics of ``=`` probes live in the executor.
        if self.n_partitions > 1 and column.lower() == self.partition_column:
            pids: Iterable[int] = (self.partition_of_key(key),)
        else:
            pids = range(self.n_partitions)
        chunks: List[Tuple[int, List[Tuple[Any, ...]]]] = []
        for pid in pids:
            stored_rows = self.partitions[pid].rows
            matches = [
                stored
                for position in table_index.parts[pid].lookup(key)
                if (stored := stored_rows[position]) is not None
            ]
            if matches:
                chunks.append((pid, matches))
        return chunks

    def range_chunks(
        self,
        column: str,
        lo: Any,
        lo_incl: bool,
        hi: Any,
        hi_incl: bool,
    ) -> Optional[List[Tuple[int, List[Tuple[Any, ...]]]]]:
        """Ordered-index range probe over every partition's sorted run.

        Returns ``(partition_id, matching live rows)`` pairs with each
        partition's rows in **position order** — the order a filtered scan of
        that partition would deliver them — so a range probe is observably
        indistinguishable from the scan it replaces (value order is an
        executor-level concern; see the ORDER BY pushdown).  ``None`` bounds
        are unbounded on that side.

        Returns ``None`` when no ordered index exists on ``column`` or a
        bound's type class is incompatible with the stored values (caller
        falls back to a filtered scan).  NULL/NaN bounds match nothing: the
        comparison is UNKNOWN (NULL) or false (NaN) for every row.
        """
        table_index = self.ordered_index_for(column)
        if table_index is None:
            return None
        for bound in (lo, hi):
            if bound is None:
                continue
            if isinstance(bound, float) and bound != bound:
                return []
            if not self._bound_compatible(table_index.column, bound):
                return None
        if lo is None and hi is None:
            return None
        chunks: List[Tuple[int, List[Tuple[Any, ...]]]] = []
        for pid, partition in enumerate(self.partitions):
            part = table_index.parts[pid]
            if not isinstance(part, OrderedHashIndex):
                return None
            entries = part.range_slice(lo, lo_incl, hi, hi_incl)
            if not entries:
                continue
            stored_rows = partition.rows
            matches = [
                stored
                for position in sorted(position for _value, position in entries)
                if (stored := stored_rows[position]) is not None
            ]
            if matches:
                chunks.append((pid, matches))
        return chunks

    def lookup(self, column: str, value: Any) -> Iterator[Tuple[Any, ...]]:
        """Rows whose ``column`` equals ``value`` (uses the index when present)."""
        chunks = self.probe_chunks(column, value)
        if chunks is not None:
            for _pid, matches in chunks:
                yield from matches
            return
        column_index = self.schema.column_index(column)
        for row in self.scan():
            if row[column_index] == value:
                yield row

    # -- statistics -------------------------------------------------------------

    def _build_histogram(self, index: TableIndex) -> Optional[ColumnHistogram]:
        """An equi-width histogram from the index's live sorted runs.

        Only numeric columns are summarised (equi-width bucket arithmetic
        needs subtractable values); each bucket count is a handful of
        bisections per partition run, so building one is O(buckets · log n).
        """
        runs = [
            part.run
            for part in index.parts
            if isinstance(part, OrderedHashIndex) and part.run
        ]
        if not runs:
            return None
        sample = runs[0][0][0]
        if not isinstance(sample, (int, float)):
            return None
        lo = float(min(run[0][0] for run in runs))
        hi = float(max(run[-1][0] for run in runs))
        total = sum(len(run) for run in runs)
        width = (hi - lo) / _HISTOGRAM_BUCKETS
        if width <= 0:
            counts = [total]
        else:
            counts = [0] * _HISTOGRAM_BUCKETS
            for run in runs:
                previous = 0
                for bucket in range(1, _HISTOGRAM_BUCKETS):
                    boundary = lo + width * bucket
                    at = bisect.bisect_left(run, (boundary,))
                    counts[bucket - 1] += at - previous
                    previous = at
                counts[_HISTOGRAM_BUCKETS - 1] += len(run) - previous
        return ColumnHistogram(
            column=index.column,
            lo=lo,
            hi=hi,
            width=width,
            counts=counts,
            total=total,
            table_rows=self.row_count,
        )

    def statistics(self) -> TableStatistics:
        """A fresh cardinality snapshot (derived from live counters; ordered
        indexes additionally contribute equi-width histograms)."""
        histograms: Dict[str, ColumnHistogram] = {}
        ordered_columns: List[str] = []
        for key, index in self.indexes.items():
            if index.ordered:
                ordered_columns.append(key)
                histogram = self._build_histogram(index)
                if histogram is not None:
                    histograms[key] = histogram
        return TableStatistics(
            table=self.name,
            n_partitions=self.n_partitions,
            row_count=self.row_count,
            partition_rows=[p.live_count for p in self.partitions],
            index_distinct={
                key: index.distinct_count(
                    disjoint=(
                        self.n_partitions == 1 or key == self.partition_column
                    )
                )
                for key, index in self.indexes.items()
            },
            histograms=histograms,
            ordered_columns=ordered_columns,
            mutations=self.mutations,
        )

    def __len__(self) -> int:
        return self.row_count

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Table({self.name!r}, rows={self.row_count}, "
            f"partitions={self.n_partitions})"
        )
