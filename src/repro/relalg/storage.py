"""Row storage and secondary indexes.

Tables store rows as immutable tuples in insertion order.  Secondary hash
indexes map a column value to the positions of the rows carrying that value;
the executor uses them for equality lookups (index nested-loop joins and
point selections), which is what the A1 ablation benchmark measures.

Two implementation choices keep the hot probe path allocation-free and the
mutation path O(1):

* index buckets are insertion-ordered dicts ``position → None``, so
  :meth:`HashIndex.add` and :meth:`HashIndex.remove` are O(1) and
  :meth:`HashIndex.lookup` returns a *read-only view* over the bucket instead
  of copying a list per probe;
* deleted rows leave tombstones (``None`` entries) that :meth:`Table.scan`
  skips; once tombstones dominate, :meth:`Table.compact` rewrites the row
  list and rebuilds the indexes so long-lived tables with many deletes do not
  degrade scans.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.relalg.errors import IntegrityError, SchemaError
from repro.relalg.schema import TableSchema

__all__ = ["HashIndex", "PositionsView", "Table"]

#: Compact when at least this many tombstones have accumulated …
_COMPACT_MIN_DEAD = 64
#: … and they make up at least this fraction of the row list.
_COMPACT_DEAD_FRACTION = 0.5


class PositionsView:
    """A read-only, insertion-ordered view of one index bucket.

    The view aliases live index state — it must not be mutated and should be
    consumed before the index is modified (the executor materialises its
    results before any data modification can run).  It compares equal to any
    sequence with the same elements in the same order, so existing callers
    that compared the old list results keep working.
    """

    __slots__ = ("_positions",)

    def __init__(self, positions: Dict[int, None]) -> None:
        self._positions = positions

    def __iter__(self) -> Iterator[int]:
        return iter(self._positions)

    def __len__(self) -> int:
        return len(self._positions)

    def __contains__(self, position: object) -> bool:
        return position in self._positions

    def __getitem__(self, index: int) -> int:
        return list(self._positions)[index]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, PositionsView):
            return list(self._positions) == list(other._positions)
        if isinstance(other, (list, tuple)):
            return list(self._positions) == list(other)
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PositionsView({list(self._positions)!r})"


_EMPTY_VIEW = PositionsView({})


class HashIndex:
    """A hash index over one column of a table."""

    def __init__(self, name: str, column: str) -> None:
        self.name = name
        self.column = column
        self._buckets: Dict[Any, Dict[int, None]] = {}

    def add(self, value: Any, position: int) -> None:
        """Register that the row at ``position`` has ``value`` in the column."""
        bucket = self._buckets.get(value)
        if bucket is None:
            self._buckets[value] = {position: None}
        else:
            bucket[position] = None

    def remove(self, value: Any, position: int) -> None:
        """Remove one (value, position) entry; missing entries are ignored."""
        bucket = self._buckets.get(value)
        if bucket is not None and position in bucket:
            del bucket[position]
            if not bucket:
                del self._buckets[value]

    def lookup(self, value: Any) -> PositionsView:
        """Row positions whose indexed column equals ``value`` (a read-only
        view; no copy is made)."""
        bucket = self._buckets.get(value)
        if bucket is None:
            return _EMPTY_VIEW
        return PositionsView(bucket)

    def clear(self) -> None:
        """Drop every entry (used when the owning table compacts)."""
        self._buckets.clear()

    def __len__(self) -> int:
        return sum(len(positions) for positions in self._buckets.values())


class Table:
    """One table: a schema, its rows and its secondary indexes."""

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self.rows: List[Optional[Tuple[Any, ...]]] = []
        self.indexes: Dict[str, HashIndex] = {}
        self._live_count = 0
        self._primary_index: Optional[HashIndex] = None
        pk = schema.primary_key_columns()
        if len(pk) == 1:
            self._primary_index = HashIndex(
                name=f"{schema.name}_pk", column=pk[0].name
            )
            self.indexes[pk[0].name.lower()] = self._primary_index

    # -- properties -------------------------------------------------------------

    @property
    def name(self) -> str:
        return self.schema.name

    @property
    def row_count(self) -> int:
        """Number of live (not deleted) rows."""
        return self._live_count

    @property
    def dead_count(self) -> int:
        """Number of tombstones currently in the row list."""
        return len(self.rows) - self._live_count

    # -- modification -----------------------------------------------------------

    def insert(self, values: Sequence[Any]) -> int:
        """Validate and insert one positional row; returns its position.

        Positions are only stable until the next compaction; they are an
        internal storage detail, not a durable row id.
        """
        row = self.schema.validate_row(values)
        if self._primary_index is not None:
            key_index = self.schema.column_index(self._primary_index.column)
            if self._primary_index.lookup(row[key_index]):
                raise IntegrityError(
                    f"duplicate primary key {row[key_index]!r} in table "
                    f"{self.name!r}"
                )
        position = len(self.rows)
        self.rows.append(row)
        self._live_count += 1
        for index in self.indexes.values():
            column_index = self.schema.column_index(index.column)
            index.add(row[column_index], position)
        return position

    def insert_mapping(self, mapping: Dict[str, Any]) -> int:
        """Insert a row given as a column→value mapping."""
        return self.insert(self.schema.row_from_mapping(mapping))

    def insert_many(self, rows: Iterable[Sequence[Any]]) -> int:
        """Validate and insert a batch of positional rows; returns the count.

        The batch path defers index maintenance until the whole batch is
        appended: every row is validated first (schema coercion plus primary
        key uniqueness against both the stored rows and the batch itself),
        then the row list grows in one ``extend`` and each index is updated in
        a single pass.  Because all validation happens before any mutation,
        a failing row leaves the table, its indexes and its tombstone
        accounting exactly as they were — the batch is atomic.
        """
        validated = [self.schema.validate_row(values) for values in rows]
        if not validated:
            return 0
        if self._primary_index is not None:
            key_index = self.schema.column_index(self._primary_index.column)
            seen = set()
            for row in validated:
                key = row[key_index]
                if key in seen or self._primary_index.lookup(key):
                    raise IntegrityError(
                        f"duplicate primary key {key!r} in table {self.name!r}"
                    )
                seen.add(key)
        start = len(self.rows)
        self.rows.extend(validated)
        self._live_count += len(validated)
        for index in self.indexes.values():
            column_index = self.schema.column_index(index.column)
            add = index.add
            for offset, row in enumerate(validated):
                add(row[column_index], start + offset)
        return len(validated)

    def delete_where(self, predicate) -> int:
        """Delete all live rows for which ``predicate(row_tuple)`` is true."""
        deleted = 0
        for position, row in enumerate(self.rows):
            if row is None:
                continue
            if predicate(row):
                self._delete_at(position, row)
                deleted += 1
        self._maybe_compact()
        return deleted

    def _delete_at(self, position: int, row: Tuple[Any, ...]) -> None:
        self.rows[position] = None
        self._live_count -= 1
        for index in self.indexes.values():
            column_index = self.schema.column_index(index.column)
            index.remove(row[column_index], position)

    def compact(self) -> int:
        """Drop tombstones and rebuild the indexes; returns removed count."""
        dead = self.dead_count
        if not dead:
            return 0
        self.rows = [row for row in self.rows if row is not None]
        column_indexes = {
            key: self.schema.column_index(index.column)
            for key, index in self.indexes.items()
        }
        for index in self.indexes.values():
            index.clear()
        for position, row in enumerate(self.rows):
            for key, index in self.indexes.items():
                index.add(row[column_indexes[key]], position)
        return dead

    def _maybe_compact(self) -> None:
        dead = self.dead_count
        if dead >= _COMPACT_MIN_DEAD and (
            dead >= len(self.rows) * _COMPACT_DEAD_FRACTION
        ):
            self.compact()

    # -- indexes ----------------------------------------------------------------

    def create_index(self, name: str, column: str) -> HashIndex:
        """Create (and backfill) a hash index on ``column``."""
        column_name = self.schema.column(column).name
        key = column_name.lower()
        if key in self.indexes:
            raise SchemaError(
                f"table {self.name!r} already has an index on column "
                f"{column_name!r}"
            )
        index = HashIndex(name=name, column=column_name)
        column_index = self.schema.column_index(column_name)
        for position, row in enumerate(self.rows):
            if row is not None:
                index.add(row[column_index], position)
        self.indexes[key] = index
        return index

    def drop_index(self, column: str) -> None:
        """Remove the index on ``column`` (missing indexes are ignored)."""
        self.indexes.pop(column.lower(), None)

    def index_for(self, column: str) -> Optional[HashIndex]:
        """The index on ``column`` if one exists."""
        return self.indexes.get(column.lower())

    # -- access -----------------------------------------------------------------

    def scan(self) -> Iterator[Tuple[Any, ...]]:
        """Iterate over all live rows in insertion order."""
        for row in self.rows:
            if row is not None:
                yield row

    def lookup(self, column: str, value: Any) -> Iterator[Tuple[Any, ...]]:
        """Rows whose ``column`` equals ``value`` (uses the index when present)."""
        index = self.index_for(column)
        if index is not None:
            rows = self.rows
            for position in index.lookup(value):
                row = rows[position]
                if row is not None:
                    yield row
            return
        column_index = self.schema.column_index(column)
        for row in self.scan():
            if row[column_index] == value:
                yield row

    def __len__(self) -> int:
        return self._live_count

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Table({self.name!r}, rows={self._live_count})"
