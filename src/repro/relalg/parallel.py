"""Shared-nothing process-pool execution of partitioned scan levels.

The thread fan-out of :meth:`QueryPlan.execute
<repro.relalg.planner.QueryPlan.execute>` is architecture-complete but
GIL-bound: the wall clock never follows the per-partition makespan the
virtual cost model charges.  This module closes that gap with real OS
processes:

* :class:`ProcessScanExecutor` keeps a persistent pool of **spawn-safe
  worker processes**.  Each worker owns a disjoint subset of every table's
  partition shards (shard ``pid`` belongs to worker ``pid % workers``) as
  plain columnar value lists — shared-nothing, no locks, no shared memory —
  scanned vectorized whenever the driving filters batch-compile.
* Compiled plans are closures over live tables and cannot pickle, so the
  executor ships the :class:`~repro.relalg.planner.PlanSpec` lowering of a
  plan instead: plain expression ASTs plus the slot layout.  Workers
  re-compile the driving scan level locally through
  :mod:`repro.relalg.compile` and cache the result per spec generation (the
  parent's plan cache keys plans by SQL text and per-table schema epoch, so
  a re-planned statement ships a fresh spec exactly once).
* Shards are kept in sync by **partition-routed forwarding**: every DML bumps
  the mutated :attr:`Partition.version
  <repro.relalg.storage.Partition.version>`, and the next fan-out forwards
  only the stale shards — each to the single worker that owns it —
  piggybacked on the scan request (one message per worker per statement).
  The version counter describes **committed** state only (an open
  transaction bumps it at COMMIT, never while staging), and
  :meth:`Table.partition_snapshot <repro.relalg.storage.Table.partition_snapshot>`
  filters staged rows out through the undo chain, so a forwarded shard never
  contains uncommitted data; the database additionally falls back to the
  sequential scan while its own transaction has staged DML, so the local
  session still reads its own writes.
* A scan request fans the driving level's partitions out to their owners;
  every worker scans its shards, applies the driving level's re-compiled
  residual filters and returns the surviving rows plus the scanned count per
  partition.  The parent merges the chunks **in partition order**, so the
  downstream join levels, aggregation, ordering and the
  :class:`~repro.relalg.rowset.QueryStats` partition attribution are
  byte-identical to the sequential enumeration.

Failure model: a worker that dies (killed, crashed, hung beyond the
request timeout) surfaces a typed :class:`ExecutionError` on the statement
that observed it — never a hang — and tears the pool down; the next
statement transparently rebuilds it (fresh workers re-sync their shards on
demand).  Worker-side *engine* errors (e.g. a filter dividing by zero)
travel back as typed errors too and leave the pool running.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.relalg.compile import (
    ExecContext,
    SlotLayout,
    compile_batch_predicate,
    compile_row_expr,
)
from repro.relalg.errors import ExecutionError
from repro.relalg.planner import PlanSpec, QueryPlan, lower_plan
from repro.relalg.rowset import QueryStats, _hashable
from repro.relalg.storage import gather_rows

__all__ = [
    "ProcessScanExecutor",
    "DEFAULT_SPEC_CACHE_LIMIT",
    "DEFAULT_WORKER_TIMEOUT",
]

#: Seconds a statement waits for one worker's reply before declaring the
#: worker hung and rebuilding the pool.
DEFAULT_WORKER_TIMEOUT = 60.0

#: Compiled plan specs a worker retains before evicting the oldest.  The
#: parent mirrors the same FIFO rule over the spec ids it believes each
#: worker holds (see :class:`_Worker.note_spec`), so both sides always agree
#: on what is cached — an evicted spec is simply re-shipped.  The limit
#: travels inside every scan request (it is an executor parameter), so the
#: two sides can never run different limits.
DEFAULT_SPEC_CACHE_LIMIT = 512

#: Process-global spec generation counter: ids stay unique even when one
#: shared executor pool serves several databases (or several executors share
#: a plan object).
_SPEC_IDS = itertools.count(1)


# --------------------------------------------------------------------------- #
# worker side
# --------------------------------------------------------------------------- #


def _compile_driving_scan(spec: PlanSpec):
    """Rehydrate the driving scan level of a shipped spec into closures.

    The worker-side counterpart of :func:`~repro.relalg.planner.lower_plan`:
    rebuild the slot layout from column names, re-compile the filter ASTs
    with :func:`~repro.relalg.compile.compile_row_expr` (an empty catalog is
    safe — specs with scalar subqueries in the driving filters are never
    shipped, see :attr:`PlanSpec.process_eligible`).  When the filters also
    batch-compile (:func:`~repro.relalg.compile.compile_batch_predicate`),
    the worker scans its columnar shards vectorized — one predicate dispatch
    per shard — and only materialises the surviving rows.
    """
    layout = SlotLayout.from_column_names(spec.bindings)
    driving = spec.driving
    filter_fns = [
        compile_row_expr(expr, layout, {}) for expr in driving.filter_asts
    ]
    batch_fn = (
        compile_batch_predicate(
            driving.filter_asts, layout, driving.offset, driving.end
        )
        if driving.filter_asts
        else None
    )
    partial = spec.partial_aggregate
    if partial is not None:
        # Aggregate items arrive as plain slots or (for proven-INTEGER
        # expressions like SUM(a + b)) as ASTs; compile the ASTs into row
        # accessors once per shipped spec.
        key_slots, items = partial
        partial = (
            key_slots,
            tuple(
                (kind, ref)
                if ref is None or type(ref) is int
                else (kind, compile_row_expr(ref, layout, {}))
                for kind, ref in items
            ),
        )
    return (
        driving.table_uid, driving.offset, driving.end, spec.width,
        filter_fns, batch_fn, partial,
    )


def _shard_rows(shard) -> List[Tuple[Any, ...]]:
    """The row-tuple view of a columnar shard, materialised once and cached."""
    rows = shard[2]
    if rows is None:
        count, cols = shard[0], shard[1]
        rows = list(zip(*cols)) if count else []
        shard[2] = rows
    return rows


def _scan_shard(shards, entry, ctx, pid):
    """Scan + filter one owned shard: ``(surviving rows, scanned count)``."""
    table_uid, offset, end, width, filter_fns, batch_fn, _agg = entry
    shard = shards.get((table_uid, pid))
    if shard is None:
        raise ExecutionError(
            f"worker owns no shard (table uid {table_uid}, partition "
            f"{pid}); sync protocol violated"
        )
    scanned = shard[0]
    if not filter_fns:
        survivors = _shard_rows(shard)
    elif batch_fn is not None:
        cols = shard[1]
        sel = batch_fn(cols, scanned, ctx)
        if sel is None:
            survivors = _shard_rows(shard)
        else:
            survivors = gather_rows(cols, sel)
    else:
        survivors = []
        row: List[Any] = [None] * width
        keep = survivors.append
        for candidate in _shard_rows(shard):
            row[offset:end] = candidate
            for predicate in filter_fns:
                if not predicate(row, ctx):
                    break
            else:
                keep(candidate)
    return survivors, scanned


def _worker_scan(shards, entry, params, pids):
    """Scan + filter the requested shards; returns per-partition chunks."""
    ctx = ExecContext({}, list(params), QueryStats())
    results: List[Tuple[int, List[Tuple[Any, ...]], int]] = []
    for pid in pids:
        survivors, scanned = _scan_shard(shards, entry, ctx, pid)
        results.append((pid, survivors, scanned))
    return results


def _fold_partial_aggregate(survivors, key_slots, items, ctx):
    """Fold one shard's surviving rows into partial per-group states.

    Group keys are ``_hashable``-wrapped column tuples in shard-local
    first-seen row order — the exact keys (and, restricted to this shard,
    the exact order) the sequential fold assigns.  Item states are the
    mergeable partial forms the parent recombines in partition order:
    plain counts, ``(sum, count)`` pairs for SUM/AVG, the shard min/max
    (or ``None`` when every value is NULL) and the shard-local first value.

    An item's value source is either an int slot (a plain column read) or a
    compiled row accessor (a proven-INTEGER expression — cannot raise, see
    :func:`~repro.relalg.semantics.proves_integer`), evaluated with ``ctx``.
    """
    groups: Dict[Tuple[Any, ...], List[Tuple[Any, ...]]] = {}
    order: List[Tuple[Any, ...]] = []
    if key_slots:
        for row in survivors:
            key = tuple(_hashable(row[j]) for j in key_slots)
            group = groups.get(key)
            if group is None:
                groups[key] = group = []
                order.append(key)
            group.append(row)
    elif survivors:
        groups[()] = survivors
        order.append(())
    results = []
    for key in order:
        rows = groups[key]
        states: List[Any] = []
        for kind, slot in items:
            if kind == "count*":
                states.append(len(rows))
                continue
            if kind == "first":  # the shard's first row decides
                row = rows[0]
                states.append(
                    row[slot] if type(slot) is int else slot(row, ctx)
                )
                continue
            if type(slot) is int:
                values = [v for row in rows if (v := row[slot]) is not None]
            else:
                values = [v for row in rows if (v := slot(row, ctx)) is not None]
            if kind == "count":
                states.append(len(values))
            elif kind in ("sum", "avg"):
                states.append((sum(values), len(values)))
            elif kind == "min":
                states.append(min(values) if values else None)
            elif kind == "max":
                states.append(max(values) if values else None)
            else:
                raise ExecutionError(f"unknown partial-aggregate kind {kind!r}")
        results.append((key, states))
    return results


def _worker_aggregate(shards, entry, params, pids):
    """Scan, filter and partially aggregate the requested shards.

    Returns ``(pid, folded groups, scanned count, survivor count)`` per
    partition — the shard-side half of provably-mergeable partial
    aggregation (see
    :func:`~repro.relalg.planner._classify_partial_aggregate`); the parent
    merges the states in partition order.
    """
    key_slots, items = entry[6]
    ctx = ExecContext({}, list(params), QueryStats())
    results: List[Tuple[int, List[Any], int, int]] = []
    for pid in pids:
        survivors, scanned = _scan_shard(shards, entry, ctx, pid)
        folded = _fold_partial_aggregate(survivors, key_slots, items, ctx)
        results.append((pid, folded, scanned, len(survivors)))
    return results


def _worker_main(conn) -> None:
    """Entry point of one pool worker (top-level: spawn pickles it by name).

    State is a dict of shard replicas keyed ``(table uid, partition id)``
    plus a bounded cache of re-compiled driving-scan levels keyed by spec
    generation.  Shards arrive and are held **columnar** — ``[row count,
    per-column value lists, lazily cached row tuples]`` — so the vectorized
    scan needs no per-row materialisation and the pickled sync payload
    carries a fixed number of flat lists instead of one tuple per row.  The
    protocol is strict request/response over one pipe: every message gets
    exactly one ``("ok", ...)`` or ``("err", message)`` reply except
    ``("stop",)``, which exits the loop.
    """
    shards: Dict[Tuple[int, int], List[Any]] = {}
    compiled: Dict[int, Any] = {}
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            return
        kind = message[0]
        if kind == "stop":
            return
        try:
            if kind == "scan":
                (_, spec_id, spec, params, pids, sync, cache_limit,
                 mode) = message
                for uid, pid, count, cols in sync:
                    shards[(uid, pid)] = [count, cols, None]
                if spec is not None:
                    # A shipped payload means the parent believes this worker
                    # does not hold the spec: (re)insert it so the FIFO
                    # insertion sequence mirrors the parent's bookkeeping
                    # exactly, eviction for eviction.
                    compiled.pop(spec_id, None)
                    compiled[spec_id] = _compile_driving_scan(spec)
                    while len(compiled) > cache_limit:
                        compiled.pop(next(iter(compiled)))
                entry = compiled.get(spec_id)
                if entry is None:
                    raise ExecutionError(
                        f"worker has no compiled spec {spec_id} and none "
                        f"was shipped; sync protocol violated"
                    )
                run = _worker_aggregate if mode == "agg" else _worker_scan
                reply = ("ok", run(shards, entry, params, pids))
            elif kind == "forget":
                uids = set(message[1])
                for key in [k for k in shards if k[0] in uids]:
                    del shards[key]
                reply = ("ok", None)
            elif kind == "ping":
                reply = ("ok", "pong")
            else:
                reply = ("err", f"unknown message kind {kind!r}")
        except Exception as exc:  # lint: allow-broad-except
            reply = ("err", str(exc) or type(exc).__name__)
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            return


# --------------------------------------------------------------------------- #
# parent side
# --------------------------------------------------------------------------- #


class _Worker:
    """Parent-side handle of one pool worker."""

    __slots__ = ("process", "conn", "specs", "versions")

    def __init__(self, process, conn) -> None:
        self.process = process
        self.conn = conn
        #: Spec generations this worker currently holds compiled, in the
        #: worker's exact FIFO insertion order (insertion-ordered dict used
        #: as an ordered set) — the parent-side mirror of the worker cache.
        self.specs: Dict[int, None] = {}
        #: (table uid, pid) → shard version last forwarded to this worker.
        self.versions: Dict[Tuple[int, int], int] = {}

    def note_spec(self, spec_id: int, cache_limit: int) -> None:
        """Record that a spec payload was just shipped to this worker.

        Applies the worker's own FIFO eviction rule (same insertion, same
        limit), so ``spec_id in specs`` is always exactly what the worker
        holds and an evicted spec gets re-shipped instead of desyncing.
        """
        self.specs.pop(spec_id, None)
        self.specs[spec_id] = None
        while len(self.specs) > cache_limit:
            del self.specs[next(iter(self.specs))]


class ProcessScanExecutor:
    """A persistent, spawn-safe pool executing partitioned scans out of process.

    One executor can be owned by a single :class:`~repro.relalg.database.
    Database` (``Database(parallel=k, executor="process")`` creates and
    closes it) or shared between several databases — shard replicas are
    keyed by the process-globally unique :attr:`Table.uid
    <repro.relalg.storage.Table.uid>`, so tables of different databases (or
    DROP/CREATE generations of one name) never alias.

    The pool starts lazily on the first fan-out and rebuilds itself on the
    first statement after a worker failure.
    """

    def __init__(
        self,
        workers: int = 2,
        timeout: float = DEFAULT_WORKER_TIMEOUT,
        start_method: str = "spawn",
        spec_cache_limit: int = DEFAULT_SPEC_CACHE_LIMIT,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be positive, got {workers}")
        if timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        if spec_cache_limit < 1:
            raise ValueError(
                f"spec_cache_limit must be positive, got {spec_cache_limit}"
            )
        import multiprocessing

        self.workers = workers
        self.timeout = timeout
        self.spec_cache_limit = spec_cache_limit
        self._mp = multiprocessing.get_context(start_method)
        self._handles: List[_Worker] = []
        self._closed = False

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    @property
    def running(self) -> bool:
        """Whether the worker pool is currently up."""
        return bool(self._handles)

    def worker_pids(self) -> List[int]:
        """OS pids of the running workers (empty before the first fan-out)."""
        return [handle.process.pid for handle in self._handles]

    def _ensure_started(self) -> None:
        if self._closed:
            raise ExecutionError("process executor has been shut down")
        if self._handles:
            return
        for position in range(self.workers):
            parent_conn, child_conn = self._mp.Pipe()
            process = self._mp.Process(
                target=_worker_main,
                args=(child_conn,),
                daemon=True,
                name=f"relalg-scan-{position}",
            )
            process.start()
            child_conn.close()
            self._handles.append(_Worker(process, parent_conn))

    def _teardown(self, graceful: bool = False) -> None:
        """Stop every worker and drop all parent-side pool state."""
        handles, self._handles = self._handles, []
        for handle in handles:
            if graceful:
                try:
                    handle.conn.send(("stop",))
                except (BrokenPipeError, OSError):
                    pass
            try:
                handle.conn.close()
            except OSError:
                pass
        for handle in handles:
            handle.process.join(timeout=1.0)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=1.0)
            if handle.process.is_alive():  # pragma: no cover - last resort
                handle.process.kill()
                handle.process.join(timeout=1.0)

    def shutdown(self) -> None:
        """Stop the pool permanently (idempotent)."""
        self._closed = True
        self._teardown(graceful=True)

    def forget(self, uids: Sequence[int]) -> None:
        """Drop the shard replicas of the given tables from every worker.

        Called when a database borrowing a shared pool closes, so long-lived
        pools do not accumulate dead replicas.  A pool that is down (or dies
        during the request) has nothing to forget — failures here only tear
        the pool down, they never raise.
        """
        uid_set = set(uids)
        if not self._handles or not uid_set:
            return
        try:
            for handle in self._handles:
                handle.conn.send(("forget", list(uid_set)))
            for handle in self._handles:
                self._recv(handle)
        except ExecutionError:
            return
        for handle in self._handles:
            for key in [k for k in handle.versions if k[0] in uid_set]:
                del handle.versions[key]

    # ------------------------------------------------------------------ #
    # the fan-out
    # ------------------------------------------------------------------ #

    def scan_chunks(
        self, plan: QueryPlan, params: Sequence[Any]
    ) -> Optional[List[Tuple[int, List[Tuple[Any, ...]], int]]]:
        """Execute a plan's driving scan level on the pool.

        Returns ``(pid, surviving rows, scanned count)`` triples covering
        every partition **in partition order** — the exact chunk stream the
        sequential enumeration would produce after applying the driving
        level's filters — or ``None`` when the plan cannot be shipped (no
        partitioned driving scan, or driving filters with scalar
        subqueries): the caller falls back to local execution.

        Raises :class:`ExecutionError` when a worker fails (died, hung,
        protocol error); the pool is rebuilt by the next statement.
        """
        return self._fanout(plan, params, "rows")

    def aggregate_chunks(
        self, plan: QueryPlan, params: Sequence[Any]
    ) -> Optional[List[Tuple[int, List[Any], int, int]]]:
        """Scan *and partially aggregate* a plan's driving level on the pool.

        For plans carrying a :attr:`PlanSpec.partial_aggregate` recipe the
        workers fold their shards' surviving rows into per-group partial
        states and return ``(pid, groups, scanned count, survivor count)``
        per partition in partition order — only fold state crosses the
        process boundary, not the surviving rows.  Returns ``None`` when the
        plan cannot be shipped or carries no recipe: the caller falls back
        to :meth:`scan_chunks` (and, failing that, local execution).
        """
        return self._fanout(plan, params, "agg")

    def _fanout(
        self, plan: QueryPlan, params: Sequence[Any], mode: str
    ) -> Optional[List[Tuple[Any, ...]]]:
        spec = getattr(plan, "_process_spec", None)
        if spec is None:
            spec = lower_plan(plan)
            plan._process_spec = spec
            plan._process_spec_id = next(_SPEC_IDS)
        if not spec.process_eligible:
            # Covers (among others) range-probe driving levels and plans
            # with index-order pushdown: both must run sequentially in every
            # mode so their physical counters stay byte-identical across
            # sequential / thread / process execution.
            return None
        if mode == "agg" and spec.partial_aggregate is None:
            return None
        spec_id = plan._process_spec_id
        table = plan.levels[0].table
        self._ensure_started()
        width = len(self._handles)
        jobs: List[Tuple[_Worker, List[int]]] = []
        for position, handle in enumerate(self._handles):
            pids = list(range(position, table.n_partitions, width))
            if not pids:
                continue
            sync = []
            for pid in pids:
                key = (table.uid, pid)
                version = table.partitions[pid].version
                if handle.versions.get(key) != version:
                    _version, count, cols = (
                        table.partition_snapshot_columns(pid)
                    )
                    sync.append((table.uid, pid, count, cols))
                    handle.versions[key] = version
            payload = None if spec_id in handle.specs else spec
            try:
                handle.conn.send(
                    (
                        "scan", spec_id, payload, list(params), pids, sync,
                        self.spec_cache_limit, mode,
                    )
                )
            except (BrokenPipeError, OSError) as exc:
                self._teardown()
                raise ExecutionError(
                    f"process executor worker died before the scan request: "
                    f"{exc}"
                ) from exc
            if payload is not None:
                handle.note_spec(spec_id, self.spec_cache_limit)
            jobs.append((handle, pids))
        chunks: Dict[int, Tuple[Any, ...]] = {}
        worker_error: Optional[str] = None
        for handle, _pids in jobs:
            status, body = self._recv(handle)
            if status == "err":
                worker_error = worker_error or body
                continue
            for pid, *rest in body:
                chunks[pid] = tuple(rest)
        if worker_error is not None:
            raise ExecutionError(worker_error)
        return [
            (pid, *chunks[pid]) for pid in range(table.n_partitions)
        ]

    def _recv(self, handle: _Worker) -> Tuple[str, Any]:
        """One worker reply, bounded by the request timeout (never a hang)."""
        try:
            if not handle.conn.poll(self.timeout):
                self._teardown()
                raise ExecutionError(
                    f"process executor worker (pid "
                    f"{handle.process.pid}) did not reply within "
                    f"{self.timeout}s; pool torn down"
                )
            return handle.conn.recv()
        except (EOFError, BrokenPipeError, OSError) as exc:
            self._teardown()
            raise ExecutionError(
                f"process executor worker (pid {handle.process.pid}) died "
                f"mid-statement; pool torn down"
            ) from exc

    # ------------------------------------------------------------------ #

    def __enter__(self) -> "ProcessScanExecutor":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.shutdown()
        return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._closed else (
            "running" if self._handles else "idle"
        )
        return f"ProcessScanExecutor(workers={self.workers}, {state})"
