"""Error types of the relational engine."""

from __future__ import annotations

from typing import Optional

__all__ = [
    "RelalgError",
    "SqlSyntaxError",
    "SchemaError",
    "IntegrityError",
    "ExecutionError",
]


class RelalgError(Exception):
    """Base class of every error raised by :mod:`repro.relalg`."""


class SqlSyntaxError(RelalgError):
    """Raised by the SQL lexer/parser on malformed statements."""

    def __init__(self, message: str, position: Optional[int] = None) -> None:
        if position is not None:
            message = f"{message} (at character {position})"
        super().__init__(message)
        self.position = position


class SchemaError(RelalgError):
    """Raised for unknown tables/columns, duplicate definitions and type issues."""


class IntegrityError(RelalgError):
    """Raised when an insert violates a NOT NULL or primary-key constraint."""


class ExecutionError(RelalgError):
    """Raised when a statement fails during execution (e.g. type mismatch)."""
