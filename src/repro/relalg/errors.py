"""Error types of the relational engine."""

from __future__ import annotations

from typing import Optional

__all__ = [
    "RelalgError",
    "SqlSyntaxError",
    "SchemaError",
    "IntegrityError",
    "ExecutionError",
    "SemanticError",
    "RecoveryError",
    "TransactionWarning",
]


class RelalgError(Exception):
    """Base class of every error raised by :mod:`repro.relalg`."""


class SqlSyntaxError(RelalgError):
    """Raised by the SQL lexer/parser on malformed statements."""

    def __init__(self, message: str, position: Optional[int] = None) -> None:
        if position is not None:
            message = f"{message} (at character {position})"
        super().__init__(message)
        self.position = position


class SchemaError(RelalgError):
    """Raised for unknown tables/columns, duplicate definitions and type issues."""


class IntegrityError(RelalgError):
    """Raised when an insert violates a NOT NULL or primary-key constraint."""


class ExecutionError(RelalgError):
    """Raised when a statement fails during execution (e.g. type mismatch).

    Also covers transaction-protocol misuse: nested ``BEGIN``, ``COMMIT`` /
    ``ROLLBACK`` without an open transaction, and DDL inside a transaction.
    """


class SemanticError(ExecutionError):
    """Raised by static analysis before a statement executes.

    A :class:`SemanticError` marks a statement that would deterministically
    fail (or is ill-formed) for every row it touches — an incompatible
    comparison, a ``VARCHAR`` WHERE clause, an aggregate in a WHERE — so the
    engine rejects it at plan time, before any partition is scanned or any
    :class:`QueryStats` counter moves.  Subclasses :class:`ExecutionError`
    because the statement *would* have failed during execution; callers that
    catch the broader class keep working.
    """

    def __init__(self, message: str, position: Optional[int] = None) -> None:
        if position is not None:
            message = f"{message} (at character {position})"
        super().__init__(message)
        self.position = position


class RecoveryError(RelalgError):
    """Raised when the write-ahead log or its checkpoint cannot be recovered.

    Torn tails (a crash mid-append) are *not* errors — recovery truncates
    them; this error marks genuinely inconsistent durable state, e.g. a log
    whose generation is newer than the checkpoint that should cover it.
    """


class TransactionWarning(UserWarning):
    """Emitted when :meth:`Database.close` rolls back an open transaction.

    Closing mid-transaction is almost always an application bug (a missed
    COMMIT); the close path rolls the transaction back — never silently
    commits — and warns so the bug is visible without crashing shutdown.
    """
