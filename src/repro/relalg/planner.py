"""Plan-then-execute query planning for the relational engine.

The interpreted engine (:mod:`repro.relalg.interp`) re-derives everything per
statement execution — and much of it per *row*: which conjunct applies at
which join level, whether an index probe is possible, how a column name maps
into the row environment.  This module does all of that exactly once per
statement:

* :func:`plan_select` turns a parsed ``SELECT`` into a :class:`QueryPlan`:
  a join order (chosen greedily by bound-predicate availability, then by
  *estimated cardinality* within the probe tiers — the per-table / per-index
  statistics maintained by :class:`~repro.relalg.storage.Table` feed the
  estimates; the plain-scan tier keeps syntactic order to preserve the
  reference engine's physical-counter contract), one explicit
  :class:`AccessPath` per table binding,
  the residual filters of every level, and compiled projection / aggregation
  / ordering closures (see :mod:`repro.relalg.compile`);
* :class:`QueryPlan.execute` runs the plan against the live tables — the
  plan is parameter-free and is reused across executions and parameter
  bindings (the statement-level plan cache lives in
  :class:`repro.relalg.database.Database`, keyed by SQL text and invalidated
  per dependent table).

Access paths (all partition-aware; storage is hash-partitioned by primary
key, see :mod:`repro.relalg.storage`):

1. :class:`IndexProbe` — an equality conjunct ``col = expr`` where ``col`` is
   an indexed column of this binding and ``expr`` is computable from the
   levels already bound.  A probe on the table's partition column (the
   single-column primary key) is *partition-pruned*: it touches exactly one
   partition's local index.
2. :class:`HashJoinBuild` — an equality conjunct joining an *unindexed*
   column of this binding to an expression over already-bound levels: the
   table is scanned partition by partition once per execution into a
   transient hash table and probed per outer row, replacing the
   interpreter's O(outer × inner) rescans.
3. :class:`PartitionScan` — everything else; applicable conjuncts become
   filters.  The scan iterates partitions morsel-style, and
   :meth:`QueryPlan.execute` optionally fans the partitions of the first
   (driving) level out over a thread pool.

NULL join keys never match (both probe kinds), matching ``=`` semantics.

Join-order caveat for differential testing: the reference engine binds
tables in syntactic order, so its :class:`QueryStats` are only comparable
when this planner's statistics-driven order coincides with the syntactic
one — :attr:`QueryPlan.follows_syntactic_order` reports exactly that (the
same carve-out the hash-join access path already needs, since the reference
engine lacks it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from heapq import merge as _heap_merge, nsmallest
from itertools import chain
from operator import itemgetter
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.relalg.compile import (
    BatchPredicate,
    ExecContext,
    GroupFn,
    RowFn,
    SlotLayout,
    compile_batch_aggregate,
    compile_batch_expr,
    compile_batch_predicate,
    compile_batch_projection,
    compile_group_expr,
    compile_row_expr,
)
from repro.relalg.errors import ExecutionError, SchemaError
from repro.relalg.rowset import QueryStats, ResultSet, _SortKey, _hashable, _is_true
from repro.relalg.sqlast import (
    BinaryOperation,
    BinaryOperator,
    ColumnRef,
    FunctionExpr,
    InList,
    IsNull,
    Literal,
    ScalarSubquery,
    SelectStatement,
    SqlExpr,
    Star,
    TableRef,
    UnaryOperation,
)
from repro.relalg.schema import ColumnType
from repro.relalg.semantics import RangeInterval, analyze_select, proves_integer
from repro.relalg.storage import (
    CHUNK_ROWS,
    OrderedHashIndex,
    Table,
    TableStatistics,
    gather_columns,
)

__all__ = [
    "AccessPath",
    "HashJoinBuild",
    "IndexProbe",
    "LevelSpec",
    "PartitionScan",
    "PlanSpec",
    "QueryPlan",
    "RangeProbe",
    "expr_has_subquery",
    "expr_table_deps",
    "lower_plan",
    "plan_select",
    "statement_subselects",
    "statement_table_deps",
]


# --------------------------------------------------------------------------- #
# access paths
# --------------------------------------------------------------------------- #


class AccessPath:
    """How one join level reads its table; concrete kinds below."""

    __slots__ = ()


class PartitionScan(AccessPath):
    """Full scan, iterated partition by partition (morsel-style)."""

    __slots__ = ()
    kind = "scan"


class IndexProbe(AccessPath):
    """Equality probe into a per-partition hash index.

    ``pruned`` marks probes on the partition column: they touch exactly one
    partition.  ``fallback`` is the compiled probe predicate, applied as a
    plain filter if the index disappears behind the plan cache's back
    (direct ``Table.drop_index`` calls bypass the schema epochs).
    """

    __slots__ = ("column", "key", "fallback", "pruned")
    kind = "index-probe"

    def __init__(
        self, column: str, key: RowFn, fallback: RowFn, pruned: bool
    ) -> None:
        self.column = column
        self.key = key
        self.fallback = fallback
        self.pruned = pruned


class HashJoinBuild(AccessPath):
    """Build a transient hash table (partition by partition) and probe it."""

    __slots__ = ("col_index", "key")
    kind = "hash-probe"

    def __init__(self, col_index: int, key: RowFn) -> None:
        self.col_index = col_index
        self.key = key


class RangeProbe(AccessPath):
    """Bisect an ordered index's sorted runs with a sargable range predicate.

    ``lo``/``hi`` are the compiled bound expressions (``None`` = unbounded on
    that side), ``lo_incl``/``hi_incl`` their inclusivity.  ``fallbacks``
    are the compiled source conjuncts, re-applied as plain filters when the
    ordered index disappears behind the plan cache's back or a bound's
    runtime type class cannot be compared against the stored column — the
    filtered scan then reproduces the reference engine's per-row semantics
    (including its typed comparison errors).
    """

    __slots__ = ("column", "lo", "lo_incl", "hi", "hi_incl", "fallbacks")
    kind = "range-probe"

    def __init__(
        self,
        column: str,
        lo: Optional[RowFn],
        lo_incl: bool,
        hi: Optional[RowFn],
        hi_incl: bool,
        fallbacks: List[RowFn],
    ) -> None:
        self.column = column
        self.lo = lo
        self.lo_incl = lo_incl
        self.hi = hi
        self.hi_incl = hi_incl
        self.fallbacks = fallbacks


_SCAN = PartitionScan()


class _Level:
    """One join level: a table binding, its access path and its filters."""

    __slots__ = (
        "binding", "table", "offset", "end", "access", "filters", "estimate",
        "filter_exprs", "key_ast",
    )

    def __init__(
        self,
        binding: str,
        table: Table,
        offset: int,
        end: int,
        access: AccessPath,
        filters: List[RowFn],
        estimate: float,
        filter_exprs: Optional[List[SqlExpr]] = None,
        key_ast: Optional[SqlExpr] = None,
    ) -> None:
        self.binding = binding
        self.table = table
        self.offset = offset
        self.end = end
        self.access = access
        self.filters = filters
        #: Estimated rows this level produces per outer row (plan-time).
        self.estimate = estimate
        #: Source ASTs of ``filters`` — the plain-data form :func:`lower_plan`
        #: lowers into a :class:`PlanSpec` (compiled closures do not pickle).
        self.filter_exprs = filter_exprs if filter_exprs is not None else []
        #: Source AST of the probe key expression (probe access paths only).
        self.key_ast = key_ast


# --------------------------------------------------------------------------- #
# the plan
# --------------------------------------------------------------------------- #


@dataclass
class QueryPlan:
    """A fully compiled SELECT: reusable across executions and parameters."""

    statement: SelectStatement
    tables: Dict[str, Table]
    layout: SlotLayout
    levels: List[_Level]
    columns: List[str]
    #: ``None`` for aggregate queries.
    projector: Optional[Callable[[Tuple[Any, ...], ExecContext], Tuple[Any, ...]]]
    #: Shortcut: the projection is the identity over the full slot row.
    identity_projection: bool
    #: Aggregate machinery (``None`` entries for non-aggregate queries).
    group_key_fns: Optional[List[RowFn]]
    having_fn: Optional[GroupFn]
    item_group_fns: Optional[List[GroupFn]]
    #: ORDER BY: ('col', output_index, ascending) | ('expr', row_fn, ascending)
    order_spec: List[Tuple[str, Any, bool]]
    distinct: bool
    limit: Optional[int]
    #: Rows to skip before the LIMIT window (``LIMIT n OFFSET m``).
    offset: Optional[int]
    #: Lowered names of every table this plan reads (bindings + subqueries);
    #: the per-table plan-cache invalidation in ``Database`` keys off these.
    table_deps: Set[str]
    #: Whether any bound table has more than one partition; single-partition
    #: plans run the historical tight enumeration loop unchanged.
    partitioned: bool
    #: Plans of the statement's scalar subqueries, snapshot at plan time
    #: (the same moment — and therefore the same statistics — as the
    #: subplans compiled into the expression closures), outermost first.
    #: EXPLAIN reads these so it reports what actually executes.
    subquery_plans: List["QueryPlan"]
    #: Whether the chosen join order equals the statement's syntactic binding
    #: order (the order the reference engine always uses).  Differential
    #: tests compare physical counters only when this holds.
    follows_syntactic_order: bool
    #: Whether the driving level can be scanned vectorized: a
    #: :class:`PartitionScan` whose residual filters all batch-compiled (see
    #: :func:`~repro.relalg.compile.compile_batch_predicate`).  Decided at
    #: plan time; execution still needs ``vectorized=True`` to opt in.
    vector_eligible: bool = False
    #: The compiled batch predicate over the driving level's chunks
    #: (``None`` when the driving level has no filters, or is ineligible).
    vector_filter: Optional[BatchPredicate] = None
    #: ``row -> output tuple`` over slot positions only (an ``itemgetter``
    #: under the hood), when the whole select list is slot-addressed.  The
    #: vectorized path maps it over the joined rows in one C-level pass;
    #: ``None`` falls back to :attr:`projector`.
    batch_projector: Optional[Callable[[Tuple[Any, ...]], Tuple[Any, ...]]] = None
    #: Batch grouped aggregation over the joined rows (see
    #: :func:`~repro.relalg.compile.compile_batch_aggregate`); ``None`` when
    #: ineligible.  The closure returns ``None`` (side-effect free) when a
    #: fold errors — execution then replays :meth:`_aggregate` row-at-a-time.
    vector_aggregate: Optional[Callable] = None
    #: Whole-result batch projection for expression select lists (see
    #: :func:`~repro.relalg.compile.compile_batch_projection`); the
    #: all-slot case keeps the cheaper :attr:`batch_projector`.
    vector_projector: Optional[Callable] = None
    #: Batch hash-join probe key: the probe key of a two-level
    #: scan→hash-join plan, compiled over the driving binding's slot range.
    #: ``None`` when the plan shape or the key expression is ineligible.
    vector_join_key: Optional[Tuple[Any, ...]] = None
    #: Provably-mergeable partial aggregation the process-pool workers can
    #: fold shard-side: ``(group_by ASTs, item kind/AST pairs)`` — plain
    #: picklable data, shipped inside the :class:`PlanSpec`.  ``None``
    #: whenever merging partial states could diverge from the sequential
    #: fold (float SUM/AVG reassociation, DISTINCT, HAVING, joins).
    partial_aggregate_spec: Optional[Tuple[Tuple[SqlExpr, ...],
                                           Tuple[Tuple[Any, ...], ...]]] = None
    #: Per-rung vectorization report for EXPLAIN: rung name → human-readable
    #: status ("vectorized…", "row-at-a-time (reason)", "n/a (reason)").
    vector_report: Dict[str, str] = field(default_factory=dict)
    #: True when static analysis proved some conjunct false for every row
    #: (``WHERE 1 = 2``, ``x = 1 AND x = 2``): execution skips enumeration
    #: entirely — zero rows scanned, zero index lookups — and the normal
    #: aggregation/projection pipeline runs over the empty row set.
    contradiction: bool = False
    #: Findings of the plan-time semantic analysis (folds, dropped
    #: conjuncts, contradictions, lint warnings) for EXPLAIN's ``analysis:``
    #: section.
    analysis_report: Tuple[str, ...] = ()
    #: ORDER BY + LIMIT pushed onto index order: ``(column, ascending)``
    #: when the single sort key is an ordered-indexed column of a
    #: single-level scan plan — execution k-way merges the per-partition
    #: sorted runs and stops after ``limit + offset`` surviving rows,
    #: instead of scanning everything and sorting.  Mode-independent (the
    #: thread/process fan-out is disabled for these plans) so every engine
    #: mode reports identical counters.
    index_order: Optional[Tuple[str, bool]] = None

    # ------------------------------------------------------------------ #

    def execute(
        self,
        params: Sequence[Any] = (),
        stats: Optional[QueryStats] = None,
        pool=None,
        process_executor=None,
        vectorized: bool = False,
        chunk_size: int = CHUNK_ROWS,
    ) -> ResultSet:
        """Run the plan and return the materialised result.

        ``pool`` (a ``concurrent.futures`` executor) enables the optional
        per-partition fan-out of the driving scan level over threads;
        ``process_executor`` (a
        :class:`~repro.relalg.parallel.ProcessScanExecutor`) instead ships
        the driving scan level's :class:`PlanSpec` to worker processes and
        merges their filtered row chunks in partition order (plans the
        executor cannot ship — see :attr:`PlanSpec.process_eligible` — fall
        back to sequential execution).  ``None`` for both (the default)
        executes sequentially with work accounting byte-identical to the
        historical engine.

        ``vectorized`` drives eligible plans (:attr:`vector_eligible`)
        batch-at-a-time over the driving table's columnar chunks of
        ``chunk_size`` rows: one predicate dispatch per chunk instead of one
        closure call per row, with results *and* statistics byte-identical
        to the row-at-a-time scan.  Ineligible plans silently keep the
        row-at-a-time path, which remains the differential reference.
        """
        stats = stats if stats is not None else QueryStats()
        ctx = ExecContext(self.tables, params, stats)
        use_vectorized = vectorized and self.vector_eligible
        #: Batch hash-join probing rides any pre-filtered chunk stream (local
        #: vectorized chunks or process-pool chunks); ``vectorized=False``
        #: keeps the row-at-a-time probe as the differential reference.
        batch_join = vectorized and self.vector_join_key is not None
        result_rows: Optional[List[Tuple[Any, ...]]] = None
        rows: List[Tuple[Any, ...]] = []
        # A proven contradiction skips enumeration outright: `rows` stays
        # empty and flows through the ordinary aggregation/projection
        # pipeline (ungrouped aggregates still emit their single row).
        enumerated = self.contradiction
        # Index-order pushdown runs before any fan-out decision so every
        # engine mode takes the same enumeration (and reports the same
        # counters); it returns None to fall back (index dropped, NaNs).
        index_ordered = False
        if not enumerated and self.index_order is not None:
            pushed = self._enumerate_index_order(ctx)
            if pushed is not None:
                rows = pushed
                enumerated = True
                index_ordered = True
        if not enumerated and process_executor is not None and self.partitioned:
            if vectorized and self.partial_aggregate_spec is not None:
                partials = process_executor.aggregate_chunks(self, params)
                if partials is not None:
                    result_rows = self._merge_partial_aggregate(partials, ctx)
                    enumerated = True
            if not enumerated and (
                (chunks := process_executor.scan_chunks(self, params))
                is not None
            ):
                rows = (
                    self._enumerate_vector_join(ctx, chunks) if batch_join
                    else self._enumerate(ctx, driving_chunks=chunks)
                )
                enumerated = True
        if not enumerated:
            if pool is not None and self.parallel_partition_count() > 1:
                rows = self._enumerate_parallel(
                    ctx, pool, vectorized=use_vectorized, chunk_size=chunk_size
                )
            elif use_vectorized:
                chunks = self._vector_chunks(ctx, chunk_size)
                rows = (
                    self._enumerate_vector_join(ctx, chunks) if batch_join
                    else self._enumerate(ctx, driving_chunks=chunks)
                )
            elif not self.partitioned:
                rows = self._enumerate_single(ctx)
            else:
                rows = self._enumerate(ctx)

        if result_rows is not None:
            pass  # process-pool partial aggregation already produced groups
        elif self.item_group_fns is not None:
            if use_vectorized and self.vector_aggregate is not None:
                result_rows = self.vector_aggregate(rows, ctx)
            if result_rows is None:
                result_rows = self._aggregate(rows, ctx)
        elif self.identity_projection:
            result_rows = list(rows)
        elif use_vectorized and self.batch_projector is not None:
            result_rows = list(map(self.batch_projector, rows))
        elif use_vectorized and self.vector_projector is not None:
            result_rows = self.vector_projector(rows, ctx)
        else:
            projector = self.projector
            result_rows = [projector(row, ctx) for row in rows]

        if self.order_spec and not index_ordered:
            # Top-k: ORDER BY + LIMIT without DISTINCT (dedup runs after
            # ordering, so truncating early would change the result) keeps a
            # bounded heap instead of sorting everything.  The heap must
            # retain the skipped OFFSET prefix as well as the LIMIT window.
            top_k = (
                self.limit + (self.offset or 0)
                if self.limit is not None and use_vectorized
                and not self.distinct
                else None
            )
            result_rows = self._order(rows, result_rows, ctx, top_k=top_k)

        if self.distinct:
            seen = set()
            unique: List[Tuple[Any, ...]] = []
            for row in result_rows:
                key = tuple(_hashable(v) for v in row)
                if key not in seen:
                    seen.add(key)
                    unique.append(row)
            result_rows = unique

        if self.limit is not None or self.offset:
            start = self.offset or 0
            stop = None if self.limit is None else start + self.limit
            result_rows = result_rows[start:stop]

        stats.rows_returned += len(result_rows)
        return ResultSet(columns=list(self.columns), rows=result_rows, stats=stats)

    def describe(self) -> List[Dict[str, Any]]:
        """Plan shape for EXPLAIN, tests and debugging.

        One entry per join level, in execution order: the access path, the
        residual filter count, the partition layout (and whether an index
        probe is partition-pruned) and the plan-time cardinality estimates
        (``estimated_rows`` per outer row, ``estimated_cardinality``
        cumulative).
        """
        described: List[Dict[str, Any]] = []
        cumulative = 1.0
        for level in self.levels:
            cumulative *= max(level.estimate, 0.0)
            access = level.access
            if type(access) is IndexProbe:
                column: Optional[str] = access.column
            elif type(access) is RangeProbe:
                column = access.column
            elif type(access) is HashJoinBuild:
                column = level.table.schema.columns[access.col_index].name.lower()
            else:
                column = None
            described.append(
                {
                    "binding": level.binding,
                    "table": level.table.name,
                    "access": access.kind,
                    "column": column,
                    "filters": len(level.filters),
                    "partitions": level.table.n_partitions,
                    "pruned": (
                        type(access) is IndexProbe and access.pruned
                    ),
                    "estimated_rows": round(level.estimate, 3),
                    "estimated_cardinality": round(cumulative, 3),
                }
            )
        return described

    def parallel_partition_count(self) -> int:
        """Partitions the driving level can fan out over (0 = not parallelizable)."""
        if not self.levels:
            return 0
        if self.index_order is not None:
            # Index-order pushdown replaces the partition fan-out; keeping
            # these plans sequential in every mode keeps the counters
            # identical across thread/process/sequential execution.
            return 0
        first = self.levels[0]
        if type(first.access) is not PartitionScan:
            return 0
        return first.table.n_partitions if first.table.n_partitions > 1 else 0

    # ------------------------------------------------------------------ #

    def _enumerate_single(self, ctx: ExecContext) -> List[Tuple[Any, ...]]:
        """The historical tight enumeration loop for unpartitioned plans.

        Every bound table has exactly one partition, so there is no chunk
        iteration and no per-partition attribution — the inner loops (and
        their work accounting) are byte-identical to the pre-partitioning
        engine, which keeps the hot path at its original speed.
        """
        levels = self.levels
        depth = len(levels)
        stats = ctx.stats
        row: List[Any] = [None] * self.layout.width
        out: List[Tuple[Any, ...]] = []
        append = out.append

        def recurse(index: int) -> None:
            if index == depth:
                append(tuple(row))
                return
            level = levels[index]
            table = level.table
            access = level.access
            filters = level.filters
            if type(access) is IndexProbe:
                table_index = table.indexes.get(access.column)
                if table_index is None:
                    # Stale plan (index dropped directly on the table): scan
                    # and re-apply the probe predicate as a filter.
                    candidates: Any = table.partitions[0].scan()
                    filters = filters + [access.fallback]
                else:
                    key = access.key(row, ctx)
                    stats.index_lookups += 1
                    if key is None or key != key:
                        # `= NULL` is UNKNOWN and `= NaN` is false for every
                        # row; the bucket lookup would wrongly hit when the
                        # probe is the very NaN object stored in the index.
                        candidates = ()
                    else:
                        stored_rows = table.partitions[0].rows
                        candidates = [
                            stored
                            for position in table_index.parts[0].lookup(key)
                            if (stored := stored_rows[position]) is not None
                        ]
            elif type(access) is RangeProbe:
                if table.ordered_index_for(access.column) is None:
                    # Stale plan (ordered index dropped): scan and re-apply
                    # the consumed range conjuncts as plain filters.
                    candidates = table.partitions[0].scan()
                    filters = filters + access.fallbacks
                else:
                    lo = access.lo(row, ctx) if access.lo is not None else None
                    hi = access.hi(row, ctx) if access.hi is not None else None
                    if (access.lo is not None and lo is None) or (
                        access.hi is not None and hi is None
                    ):
                        # A NULL bound makes the comparison UNKNOWN for
                        # every row: the probe matches nothing.
                        stats.range_probes += 1
                        candidates = ()
                    else:
                        ranged = table.range_chunks(
                            access.column, lo, access.lo_incl,
                            hi, access.hi_incl,
                        )
                        if ranged is None:
                            # Bound type class incomparable with the stored
                            # column: the filtered scan reproduces the
                            # reference engine's per-row comparison error.
                            candidates = table.partitions[0].scan()
                            filters = filters + access.fallbacks
                        else:
                            stats.range_probes += 1
                            candidates = [
                                stored
                                for _pid, matched in ranged
                                for stored in matched
                            ]
            elif type(access) is HashJoinBuild:
                hash_table = ctx.hash_tables.get(index)
                if hash_table is None:
                    hash_table = _build_hash_table(table, access.col_index, stats)
                    ctx.hash_tables[index] = hash_table
                key = access.key(row, ctx)
                stats.hash_probes += 1
                candidates = (
                    () if key is None or key != key
                    else hash_table.get(key, ())
                )
            else:
                candidates = table.partitions[0].scan()
            offset, end = level.offset, level.end
            next_index = index + 1
            scanned = 0
            if filters:
                for candidate in candidates:
                    scanned += 1
                    row[offset:end] = candidate
                    for predicate in filters:
                        if not predicate(row, ctx):
                            break
                    else:
                        recurse(next_index)
            else:
                for candidate in candidates:
                    scanned += 1
                    row[offset:end] = candidate
                    recurse(next_index)
            stats.rows_scanned += scanned

        recurse(0)
        # Every fully joined slot row passed all its predicates en route.
        stats.rows_joined += len(out)
        return out

    def _enumerate(
        self,
        ctx: ExecContext,
        restrict_partition: Optional[int] = None,
        driving_chunks=None,
    ) -> List[Tuple[Any, ...]]:
        """Nested-loop/hash join over the planned levels; returns slot rows.

        Partition-aware variant (at least one bound table is partitioned):
        scans and probes iterate per-partition chunks and attribute scan work
        to :attr:`QueryStats.partition_rows_scanned`.  ``restrict_partition``
        limits the *first* level's scan to one partition (the thread fan-out
        path enumerates each partition in its own worker and concatenates in
        partition order).  ``driving_chunks`` — ``(pid, surviving rows,
        scanned count)`` triples in partition order — replaces the first
        level's scan entirely: the process-pool workers already scanned and
        filtered the driving partitions, so this level only charges the
        reported scan work (per partition, exactly as a local scan would)
        and recurses into the inner levels per surviving row.
        """
        levels = self.levels
        depth = len(levels)
        stats = ctx.stats
        pscan = stats.partition_rows_scanned
        row: List[Any] = [None] * self.layout.width
        out: List[Tuple[Any, ...]] = []
        append = out.append

        def recurse(index: int) -> None:
            if index == depth:
                append(tuple(row))
                return
            if index == 0 and driving_chunks is not None:
                level = levels[0]
                offset, end = level.offset, level.end
                total = 0
                if depth == 1:
                    # Single-level plan: each surviving driving row IS the
                    # full slot row, so survivors append wholesale — the
                    # splice/recurse cycle per row would rebuild the same
                    # tuples one by one.
                    extend = out.extend
                    for pid, survivors, scanned in driving_chunks:
                        extend(survivors)
                        if scanned and pid is not None:
                            pscan[pid] = pscan.get(pid, 0) + scanned
                        total += scanned
                    stats.rows_scanned += total
                    return
                for pid, survivors, scanned in driving_chunks:
                    for candidate in survivors:
                        row[offset:end] = candidate
                        recurse(1)
                    # ``pid is None`` marks a single-partition driving table
                    # (vectorized chunks): its scan work is charged to the
                    # flat counter only, exactly like the row-at-a-time
                    # single-partition candidates path.
                    if scanned and pid is not None:
                        pscan[pid] = pscan.get(pid, 0) + scanned
                    total += scanned
                stats.rows_scanned += total
                return
            level = levels[index]
            table = level.table
            access = level.access
            filters = level.filters
            multi = table.n_partitions > 1
            #: Per-partition (pid, candidates) chunks for partitioned tables;
            #: single-partition tables use the flat ``candidates`` fast path
            #: (the historical inner loop, byte-for-byte work accounting).
            chunks: Any = None
            candidates: Any = None
            if type(access) is IndexProbe:
                table_index = table.indexes.get(access.column)
                if table_index is None:
                    # Stale plan (index dropped directly on the table): scan
                    # and re-apply the probe predicate as a filter.
                    filters = filters + [access.fallback]
                    if multi:
                        chunks = table.scan_chunks()
                    else:
                        candidates = table.partitions[0].scan()
                else:
                    key = access.key(row, ctx)
                    stats.index_lookups += 1
                    if key is None or key != key:
                        # NULL/NaN probes match nothing (see _enumerate_single).
                        candidates = ()
                    elif multi:
                        chunks = table.probe_chunks(access.column, key)
                    else:
                        stored_rows = table.partitions[0].rows
                        candidates = [
                            stored
                            for position in table_index.parts[0].lookup(key)
                            if (stored := stored_rows[position]) is not None
                        ]
            elif type(access) is RangeProbe:
                if table.ordered_index_for(access.column) is None:
                    # Stale plan (ordered index dropped): scan and re-apply
                    # the consumed range conjuncts as plain filters.
                    filters = filters + access.fallbacks
                    if multi:
                        chunks = table.scan_chunks()
                    else:
                        candidates = table.partitions[0].scan()
                else:
                    lo = access.lo(row, ctx) if access.lo is not None else None
                    hi = access.hi(row, ctx) if access.hi is not None else None
                    if (access.lo is not None and lo is None) or (
                        access.hi is not None and hi is None
                    ):
                        # NULL bounds match nothing (see _enumerate_single).
                        stats.range_probes += 1
                        candidates = ()
                    else:
                        ranged = table.range_chunks(
                            access.column, lo, access.lo_incl,
                            hi, access.hi_incl,
                        )
                        if ranged is None:
                            # Incomparable bound type class: filtered scan
                            # reproduces the reference per-row error.
                            filters = filters + access.fallbacks
                            if multi:
                                chunks = table.scan_chunks()
                            else:
                                candidates = table.partitions[0].scan()
                        elif multi:
                            stats.range_probes += 1
                            chunks = ranged
                        else:
                            stats.range_probes += 1
                            candidates = [
                                stored
                                for _pid, matched in ranged
                                for stored in matched
                            ]
            elif type(access) is HashJoinBuild:
                hash_table = ctx.hash_tables.get(index)
                if hash_table is None:
                    hash_table = _build_hash_table(table, access.col_index, stats)
                    ctx.hash_tables[index] = hash_table
                key = access.key(row, ctx)
                stats.hash_probes += 1
                # Probe hits are point reads; partition attribution applies
                # to the build scan (already charged), not to the hits.
                candidates = (
                    () if key is None or key != key
                    else hash_table.get(key, ())
                )
            else:
                if index == 0 and restrict_partition is not None:
                    chunks = (
                        (restrict_partition,
                         table.partitions[restrict_partition].scan()),
                    )
                elif multi:
                    chunks = table.scan_chunks()
                else:
                    candidates = table.partitions[0].scan()
            offset, end = level.offset, level.end
            next_index = index + 1
            if chunks is None:
                scanned = 0
                if filters:
                    for candidate in candidates:
                        scanned += 1
                        row[offset:end] = candidate
                        for predicate in filters:
                            if not predicate(row, ctx):
                                break
                        else:
                            recurse(next_index)
                else:
                    for candidate in candidates:
                        scanned += 1
                        row[offset:end] = candidate
                        recurse(next_index)
                stats.rows_scanned += scanned
                return
            total = 0
            for pid, candidates in chunks:
                scanned = 0
                if filters:
                    for candidate in candidates:
                        scanned += 1
                        row[offset:end] = candidate
                        for predicate in filters:
                            if not predicate(row, ctx):
                                break
                        else:
                            recurse(next_index)
                else:
                    for candidate in candidates:
                        scanned += 1
                        row[offset:end] = candidate
                        recurse(next_index)
                if scanned:
                    pscan[pid] = pscan.get(pid, 0) + scanned
                total += scanned
            stats.rows_scanned += total

        recurse(0)
        # Every fully joined slot row passed all its predicates en route.
        stats.rows_joined += len(out)
        return out

    def _enumerate_index_order(
        self, ctx: ExecContext
    ) -> Optional[List[Tuple[Any, ...]]]:
        """ORDER BY + LIMIT pushdown over the driving ordered index.

        Single-level plans whose lone sort key is an ordered-indexed column
        (:attr:`index_order`) enumerate in index order via a k-way merge of
        the per-partition sorted runs and stop after ``limit + offset``
        surviving rows — replacing the full scan *and* the sort.  Equal sort
        keys come out in partition-major storage order, ascending and
        descending alike, exactly where the stable full sort of a
        partition-major scan places them; NULLs sort last ascending / first
        descending, in scan order.  Returns ``None`` to fall back to the
        scan-then-sort path when the index was dropped behind the plan
        cache's back or any partition holds NaN values (their full-sort
        placement depends on failed comparisons the merge cannot reproduce).
        """
        column, ascending = self.index_order
        level = self.levels[0]
        table = level.table
        table_index = table.ordered_index_for(column)
        if table_index is None:
            return None
        parts = table_index.parts
        if any(part.nans for part in parts):
            return None
        stats = ctx.stats
        pscan = stats.partition_rows_scanned
        multi = table.n_partitions > 1
        filters = level.filters
        needed = (self.limit or 0) + (self.offset or 0)

        def run_stream(pid: int):
            for value, position in parts[pid].run:
                yield value, pid, position

        def run_stream_desc(pid: int):
            # Walk values descending but emit each equal-value block in
            # forward storage order (what a stable descending sort yields).
            run = parts[pid].run
            j = len(run)
            while j:
                value = run[j - 1][0]
                i = j - 1
                while i and run[i - 1][0] == value:
                    i -= 1
                for k in range(i, j):
                    yield run[k][0], pid, run[k][1]
                j = i

        n_parts = len(parts)
        # heapq.merge resolves equal keys to the earliest input stream —
        # partition order — matching the stable sort's tie placement.
        if ascending:
            ordered = _heap_merge(
                *(run_stream(pid) for pid in range(n_parts)),
                key=itemgetter(0),
            )
        else:
            ordered = _heap_merge(
                *(run_stream_desc(pid) for pid in range(n_parts)),
                key=itemgetter(0),
                reverse=True,
            )
        nulls = (
            (None, pid, position)
            for pid in range(n_parts)
            for position in sorted(parts[pid].nulls)
        )
        candidates = (
            chain(ordered, nulls) if ascending else chain(nulls, ordered)
        )

        partitions = table.partitions
        out: List[Tuple[Any, ...]] = []
        append = out.append
        scanned: Dict[int, int] = {}
        total = 0
        for _value, pid, position in candidates:
            stored = partitions[pid].rows[position]
            if stored is None:
                continue  # defensive: the index drops deleted rows eagerly
            total += 1
            if multi:
                scanned[pid] = scanned.get(pid, 0) + 1
            if filters:
                passed = True
                for predicate in filters:
                    if not predicate(stored, ctx):
                        passed = False
                        break
                if not passed:
                    continue
            append(stored)
            if len(out) >= needed:
                break
        stats.rows_scanned += total
        if multi:
            for pid, count in scanned.items():
                pscan[pid] = pscan.get(pid, 0) + count
        stats.rows_joined += len(out)
        return out

    def _vector_chunks(
        self, ctx: ExecContext, chunk_size: int, only_pid: Optional[int] = None
    ):
        """Vectorized driving scan: yield ``(pid, survivors, scanned)``.

        One triple per columnar chunk of the driving table, in partition
        order — the same shape the process-pool workers return, consumed by
        the same ``driving_chunks`` seam of :meth:`_enumerate`, so the work
        accounting is charged identically.  ``pid`` is ``None`` for
        single-partition driving tables (no per-partition attribution, like
        the row-at-a-time candidates path).
        """
        table = self.levels[0].table
        predicate = self.vector_filter
        multi = table.n_partitions > 1
        pids = range(table.n_partitions) if only_pid is None else (only_pid,)
        for pid in pids:
            out_pid = pid if multi else None
            for block, cols in table.partitions[pid].column_chunks(chunk_size):
                scanned = len(block)
                if predicate is None:
                    survivors: List[Tuple[Any, ...]] = block
                else:
                    sel = predicate(cols, scanned, ctx)
                    survivors = (
                        block if sel is None else [block[i] for i in sel]
                    )
                yield out_pid, survivors, scanned

    def _enumerate_vector_join(
        self, ctx: ExecContext, driving_chunks
    ) -> List[Tuple[Any, ...]]:
        """Batch hash-join probing over a pre-filtered driving chunk stream.

        The two-level scan→hash-join shape (:attr:`vector_join_key` set):
        probe keys are evaluated column-at-a-time per chunk of surviving
        driving rows, each key probes the shared hash table once, and joined
        rows are built by tuple concatenation — replacing one key-closure
        call, one dict probe and one slice-splice per outer row.  Work
        accounting matches the row path exactly: one ``hash_probes`` per
        surviving outer row, every iterated candidate charged to
        ``rows_scanned``, the hash table built lazily on the first
        surviving row, and residual probe-level filters applied per joined
        row with the row path's own closures (in candidate order).
        """
        stats = ctx.stats
        pscan = stats.partition_rows_scanned
        level = self.levels[1]
        access = level.access
        filters = level.filters
        d_level = self.levels[0]
        d_offset, d_end = d_level.offset, d_level.end
        driving_first = d_offset == 0
        kkind, kfn = self.vector_join_key[0], self.vector_join_key[1]
        needed = self.vector_join_key[2] if kkind == "vec" else ()
        d_width = d_end - d_offset
        hash_table = ctx.hash_tables.get(1)
        out: List[Tuple[Any, ...]] = []
        append = out.append
        total = 0
        probe_scanned = 0
        for pid, survivors, scanned in driving_chunks:
            if survivors:
                if hash_table is None:
                    hash_table = _build_hash_table(
                        level.table, access.col_index, stats
                    )
                    ctx.hash_tables[1] = hash_table
                n = len(survivors)
                if kkind == "const":
                    keys: Any = [kfn(ctx)] * n
                else:
                    cols = gather_columns(survivors, needed, d_width)
                    keys = kfn(cols, n, ctx)
                stats.hash_probes += n
                get = hash_table.get
                for srow, key in zip(survivors, keys):
                    if key is None or key != key:
                        continue  # NULL/NaN keys match nothing
                    candidates = get(key, ())
                    if not candidates:
                        continue
                    probe_scanned += len(candidates)
                    if filters:
                        for candidate in candidates:
                            joined = (
                                srow + candidate if driving_first
                                else candidate + srow
                            )
                            for predicate in filters:
                                if not predicate(joined, ctx):
                                    break
                            else:
                                append(joined)
                    elif driving_first:
                        for candidate in candidates:
                            append(srow + candidate)
                    else:
                        for candidate in candidates:
                            append(candidate + srow)
            if scanned and pid is not None:
                pscan[pid] = pscan.get(pid, 0) + scanned
            total += scanned
        stats.rows_scanned += total + probe_scanned
        stats.rows_joined += len(out)
        return out

    def _merge_partial_aggregate(
        self, partials, ctx: ExecContext
    ) -> List[Tuple[Any, ...]]:
        """Merge the process-pool workers' per-partition aggregate states.

        ``partials`` is ``(pid, groups, scanned, survivors)`` per partition
        in partition order, where ``groups`` lists ``(key, item states)`` in
        the shard's first-seen row order.  Merging in partition order
        reconstructs the sequential fold exactly: group output order is
        first appearance in partition-major row order, per-item states merge
        with associative-by-construction rules (see
        :func:`_classify_partial_aggregate`), and the scan/join counters are
        charged as the local enumeration would have.
        """
        stats = ctx.stats
        pscan = stats.partition_rows_scanned
        kinds = [spec[0] for spec in self.partial_aggregate_spec[1]]
        merged: Dict[Tuple[Any, ...], List[Any]] = {}
        order: List[Tuple[Any, ...]] = []
        total = 0
        joined = 0
        for pid, groups, scanned, survivors in partials:
            if scanned:
                pscan[pid] = pscan.get(pid, 0) + scanned
            total += scanned
            joined += survivors
            for key, states in groups:
                state = merged.get(key)
                if state is None:
                    merged[key] = list(states)
                    order.append(key)
                    continue
                for i, kind in enumerate(kinds):
                    incoming = states[i]
                    if kind in ("count*", "count"):
                        state[i] += incoming
                    elif kind in ("sum", "avg"):
                        state[i] = (
                            state[i][0] + incoming[0],
                            state[i][1] + incoming[1],
                        )
                    elif kind == "min":
                        if incoming is not None and (
                            state[i] is None or incoming < state[i]
                        ):
                            state[i] = incoming
                    elif kind == "max":
                        if incoming is not None and (
                            state[i] is None or incoming > state[i]
                        ):
                            state[i] = incoming
                    # "first": keep the earliest partition's value
        stats.rows_scanned += total
        stats.rows_joined += joined
        if not order and not self.statement.group_by:
            # An ungrouped aggregate of zero rows still yields one row —
            # synthesise the empty-group fold the row path produces.
            empty = []
            for kind in kinds:
                if kind in ("count*", "count"):
                    empty.append(0)
                else:
                    empty.append(None)
            return [tuple(empty)]
        result: List[Tuple[Any, ...]] = []
        for key in order:
            state = merged[key]
            values = []
            for i, kind in enumerate(kinds):
                if kind == "sum":
                    values.append(state[i][0] if state[i][1] else None)
                elif kind == "avg":
                    values.append(
                        state[i][0] / state[i][1] if state[i][1] else None
                    )
                else:
                    values.append(state[i])
            result.append(tuple(values))
        return result

    def _enumerate_parallel(
        self, ctx: ExecContext, pool, vectorized: bool = False,
        chunk_size: int = CHUNK_ROWS,
    ) -> List[Tuple[Any, ...]]:
        """Fan the driving scan level's partitions out over ``pool``.

        Hash-join tables are built once, up front, so the workers share them
        read-only (the sequential path builds them lazily on first probe;
        the parallel path may therefore build a table a lazy run would have
        skipped — the counters still record exactly the work performed).
        Results are concatenated in partition order, so the row order —
        and hence every downstream result — is identical to the sequential
        partition-major enumeration.  With ``vectorized`` each worker drives
        its partition through the columnar chunk scan instead of the
        row-at-a-time restriction.
        """
        for index, level in enumerate(self.levels):
            if type(level.access) is HashJoinBuild and (
                index not in ctx.hash_tables
            ):
                ctx.hash_tables[index] = _build_hash_table(
                    level.table, level.access.col_index, ctx.stats
                )

        batch_join = vectorized and self.vector_join_key is not None

        def run_partition(pid: int) -> Tuple[List[Tuple[Any, ...]], QueryStats]:
            sub_stats = QueryStats()
            sub_ctx = ExecContext(ctx.tables, ctx.params, sub_stats)
            sub_ctx.hash_tables = ctx.hash_tables
            if vectorized:
                chunks = self._vector_chunks(sub_ctx, chunk_size, only_pid=pid)
                rows = (
                    self._enumerate_vector_join(sub_ctx, chunks) if batch_join
                    else self._enumerate(sub_ctx, driving_chunks=chunks)
                )
            else:
                rows = self._enumerate(sub_ctx, restrict_partition=pid)
            return rows, sub_stats

        futures = [
            pool.submit(run_partition, pid)
            for pid in range(self.parallel_partition_count())
        ]
        out: List[Tuple[Any, ...]] = []
        for future in futures:
            rows, sub_stats = future.result()
            out.extend(rows)
            ctx.stats.merge(sub_stats)
        return out

    def _aggregate(
        self, rows: List[Tuple[Any, ...]], ctx: ExecContext
    ) -> List[Tuple[Any, ...]]:
        key_fns = self.group_key_fns
        groups: Dict[Tuple[Any, ...], List[Tuple[Any, ...]]] = {}
        order: List[Tuple[Any, ...]] = []
        if key_fns:
            for row in rows:
                key = tuple(_hashable(fn(row, ctx)) for fn in key_fns)
                group = groups.get(key)
                if group is None:
                    groups[key] = group = []
                    order.append(key)
                group.append(row)
        else:
            groups[()] = rows
            order.append(())
        having = self.having_fn
        item_fns = self.item_group_fns
        result: List[Tuple[Any, ...]] = []
        for key in order:
            group = groups[key]
            if having is not None and not _is_true(having(group, ctx)):
                continue
            result.append(tuple(fn(group, ctx) for fn in item_fns))
        return result

    def _order(
        self,
        rows: List[Tuple[Any, ...]],
        result_rows: List[Tuple[Any, ...]],
        ctx: ExecContext,
        top_k: Optional[int] = None,
    ) -> List[Tuple[Any, ...]]:
        spec = self.order_spec

        def key_for(position: int) -> Tuple[_SortKey, ...]:
            keys = []
            for kind, payload, ascending in spec:
                if kind == "col":
                    value = result_rows[position][payload]
                else:
                    value = payload(rows[position], ctx)
                keys.append(_SortKey(value, ascending))
            return tuple(keys)

        if top_k is not None:
            # Bounded heap: ``nsmallest`` is stable (it decorates each
            # element with its input position) and evaluates ``key_for``
            # once per element in input order, so rows, NULL placement and
            # any key-side counter effects are byte-identical to
            # ``sorted(...)[:k]``.
            positions = nsmallest(top_k, range(len(result_rows)), key=key_for)
        else:
            positions = sorted(range(len(result_rows)), key=key_for)
        return [result_rows[p] for p in positions]


def _build_hash_table(
    table: Table, col_index: int, stats: QueryStats
) -> Dict[Any, List[Tuple[Any, ...]]]:
    """Build one hash-join table, scanning partition by partition.

    Partition-major build order keeps every bucket's candidate list in the
    exact order a sequential full scan would produce.
    """
    pscan = stats.partition_rows_scanned
    multi = table.n_partitions > 1
    hash_table: Dict[Any, List[Tuple[Any, ...]]] = {}
    for pid, rows_iter in table.scan_chunks():
        built = 0
        for stored in rows_iter:
            built += 1
            value = stored[col_index]
            if value is not None:
                hash_table.setdefault(value, []).append(stored)
        if multi and built:
            pscan[pid] = pscan.get(pid, 0) + built
        stats.rows_scanned += built
    return hash_table


# --------------------------------------------------------------------------- #
# plan lowering: QueryPlan → PlanSpec (plain, picklable data)
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class LevelSpec:
    """One join level of a :class:`PlanSpec`: plain data, no closures.

    The expression fields hold :class:`~repro.relalg.sqlast.SqlExpr` ASTs —
    frozen dataclasses of literals, column references and operators that
    pickle cleanly — instead of the compiled closures the live
    :class:`_Level` carries.  A worker process re-compiles them locally with
    :func:`~repro.relalg.compile.compile_row_expr` over the rehydrated slot
    layout, recovering the exact per-row semantics of the parent's plan.
    """

    binding: str
    table: str
    table_uid: int
    n_partitions: int
    offset: int
    end: int
    #: Access-path kind: ``"scan"``, ``"index-probe"`` or ``"hash-probe"``.
    access: str
    #: Probe/build column (``None`` for plain scans).
    column: Optional[str]
    #: Probe key expression AST (``None`` for plain scans).
    key_ast: Optional[SqlExpr]
    pruned: bool
    filter_asts: Tuple[SqlExpr, ...]


@dataclass(frozen=True)
class PlanSpec:
    """A serializable lowering of one :class:`QueryPlan`.

    Compiled plans are closures over live :class:`Table` objects and cannot
    cross a process boundary; the spec is the plain-data projection that can:
    the slot layout as ``(binding, column names)`` pairs, and one
    :class:`LevelSpec` per join level in execution order.  The process-pool
    executor ships it to workers once per (statement, plan generation) — the
    parent's plan cache already keys plans by SQL text and per-table schema
    epoch, so a re-planned statement produces a fresh spec and the worker's
    cached compilation is superseded with it.

    ``process_eligible`` marks specs whose *driving* level a shared-nothing
    worker can execute against its local shards alone: a partitioned full
    scan whose residual filters are self-contained (no scalar subqueries —
    those read other tables, which live only in the parent).
    """

    bindings: Tuple[Tuple[str, Tuple[str, ...]], ...]
    levels: Tuple[LevelSpec, ...]
    width: int
    process_eligible: bool
    #: Slot-addressed partial-aggregation recipe (see
    #: :func:`_classify_partial_aggregate`); ``None`` when the plan cannot
    #: provably merge per-partition fold states.
    partial_aggregate: Optional[Tuple[Tuple[int, ...],
                                      Tuple[Tuple[Any, Any], ...]]] = None

    @property
    def driving(self) -> LevelSpec:
        return self.levels[0]


def expr_has_subquery(expr: SqlExpr) -> bool:
    """Whether an expression contains a scalar subquery (directly or nested)."""
    return bool(_expr_subselects(expr))


def lower_plan(plan: QueryPlan) -> PlanSpec:
    """Lower a compiled plan into its plain-data :class:`PlanSpec`."""
    layout = plan.layout
    bindings = tuple(
        (binding, tuple(layout.columns[binding]))
        for binding, _table in layout.bindings
    )
    levels = []
    for level in plan.levels:
        access = level.access
        if type(access) is IndexProbe:
            column: Optional[str] = access.column
            pruned = access.pruned
        elif type(access) is RangeProbe:
            # Only the driving level of a spec executes worker-side, and a
            # range-probe driving level is never process-eligible; inner
            # levels are lowered as descriptive data only.
            column = access.column
            pruned = False
        elif type(access) is HashJoinBuild:
            column = level.table.schema.columns[access.col_index].name.lower()
            pruned = False
        else:
            column = None
            pruned = False
        levels.append(
            LevelSpec(
                binding=level.binding,
                table=level.table.name,
                table_uid=level.table.uid,
                n_partitions=level.table.n_partitions,
                offset=level.offset,
                end=level.end,
                access=access.kind,
                column=column,
                key_ast=level.key_ast,
                pruned=pruned,
                filter_asts=tuple(level.filter_exprs),
            )
        )
    eligible = (
        plan.parallel_partition_count() > 1
        and not any(
            expr_has_subquery(expr) for expr in plan.levels[0].filter_exprs
        )
    )
    return PlanSpec(
        bindings=bindings,
        levels=tuple(levels),
        width=layout.width,
        process_eligible=eligible,
        partial_aggregate=plan.partial_aggregate_spec,
    )


def _classify_partial_aggregate(
    statement: SelectStatement, levels: List[_Level], layout: SlotLayout
) -> Optional[Tuple[Tuple[int, ...], Tuple[Tuple[Any, Any], ...]]]:
    """Slot-addressed recipe for provably-mergeable partial aggregation.

    Process-pool workers can fold aggregate state per shard and let the
    parent merge it — but only when merging partial states is *guaranteed*
    to reproduce the sequential fold byte-for-byte.  That holds for:

    - a single-level partitioned scan (joins would need cross-partition
      rows), no HAVING (needs group rows), no DISTINCT-in-aggregate (needs
      the cross-partition value sets);
    - group keys that are plain column slots — column reads cannot raise,
      so worker-side evaluation order can never surface an error the row
      path would have raised elsewhere;
    - SUM/AVG/MIN/MAX restricted to *proven INTEGER* arguments: a bare
      INTEGER column slot, or (via :func:`~repro.relalg.semantics.\
proves_integer`) a closed ``+``/``-``/``*``/unary-minus expression over
      INTEGER columns and int literals — the schema validates INTEGER
      columns to Python ints (bools rejected, integral floats coerced),
      and integer arithmetic is exact, associative and cannot raise.
      Float folds reassociate under merging (and NaN breaks MIN/MAX), so
      they fall back;
    - COUNT over any column (NULL-skipping is order-free) and group-constant
      select items that are plain columns ("first": the merge keeps the
      earliest partition's shard-local first value, which *is* the group's
      first row in partition-major order).

    Returns ``(key_slots, ((kind, slot-or-AST-or-None), ...))`` or ``None``;
    AST-valued items are compiled into row accessors worker-side by
    :func:`~repro.relalg.parallel._compile_driving_scan`.
    Ungrouped statements additionally require every item to be an aggregate:
    the empty-input synthesis in :meth:`QueryPlan._merge_partial_aggregate`
    only knows the aggregate folds' empty values.
    """
    if len(levels) != 1 or type(levels[0].access) is not PartitionScan:
        return None
    if statement.having is not None:
        return None
    table = levels[0].table
    key_slots: List[int] = []
    for expr in statement.group_by:
        if type(expr) is not ColumnRef:
            return None
        try:
            key_slots.append(layout.resolve(expr))
        except Exception:  # lint: allow-broad-except
            return None
    items: List[Tuple[Any, Any]] = []
    for item in statement.items:
        expr = item.expr
        if isinstance(expr, FunctionExpr) and expr.is_aggregate:
            name = expr.name.upper()
            if expr.distinct:
                return None
            if name == "COUNT" and (
                not expr.args or isinstance(expr.args[0], Star)
            ):
                items.append(("count*", None))
                continue
            if name not in ("COUNT", "SUM", "AVG", "MIN", "MAX"):
                return None
            if not expr.args:
                return None
            arg = expr.args[0]
            if type(arg) is ColumnRef:
                try:
                    slot = layout.resolve(arg)
                except Exception:  # lint: allow-broad-except
                    return None
                if name == "COUNT":
                    items.append(("count", slot))
                    continue
                if table.schema.columns[slot].type is not ColumnType.INTEGER:
                    return None
                items.append((name.lower(), slot))
                continue
            if name == "COUNT":
                # COUNT over a computed expression could raise worker-side;
                # stay conservative.
                return None

            def column_type_of(ref: ColumnRef) -> Optional[ColumnType]:
                try:
                    return table.schema.columns[layout.resolve(ref)].type
                except Exception:  # lint: allow-broad-except
                    return None

            if not proves_integer(arg, column_type_of):
                return None
            items.append((name.lower(), arg))
            continue
        if not statement.group_by:
            return None
        if type(expr) is not ColumnRef:
            return None
        try:
            items.append(("first", layout.resolve(expr)))
        except Exception:  # lint: allow-broad-except
            return None
    return tuple(key_slots), tuple(items)


# --------------------------------------------------------------------------- #
# planning
# --------------------------------------------------------------------------- #


def plan_select(statement: SelectStatement, tables: Dict[str, Table]) -> QueryPlan:
    """Plan (and compile) one SELECT statement against a table catalog."""
    bindings = _bindings(statement, tables)
    layout = SlotLayout(bindings)
    conjuncts = _conjuncts(statement)
    # Static semantic analysis: typed rejection before any compilation, then
    # the folded/pruned conjunct rewrite feeds planning.  Cached implicitly:
    # the analysis lives and dies with the plan (same plan cache, same
    # per-table schema-epoch invalidation).
    analysis = analyze_select(statement, tables, conjuncts=conjuncts)
    if analysis.errors:
        raise analysis.errors[0]
    contradiction = False
    analysis_report: Tuple[str, ...] = ()
    intervals: Dict[Tuple[str, str], RangeInterval] = {}
    if analysis.applicable and analysis.conjuncts is not None:
        conjuncts = analysis.conjuncts
        contradiction = analysis.contradiction
        analysis_report = analysis.report
        intervals = analysis.intervals
    required = {
        id(conjunct): _required_bindings(conjunct, bindings)
        for conjunct in conjuncts
    }
    levels = _plan_levels(
        bindings, conjuncts, required, layout, tables, intervals
    )
    columns = _output_columns(statement, bindings)

    # Vectorized drive mode: decided here, once, behind the access-path seam.
    # Eligible iff the driving level is a plain partition scan and every one
    # of its residual filters batch-compiles (no subqueries, no references
    # outside the driving binding).  Everything else — and the inner join
    # levels always — keeps the row-at-a-time loops.
    vector_eligible = False
    vector_filter = None
    report: Dict[str, str] = {}
    if not levels or type(levels[0].access) is not PartitionScan:
        kind = levels[0].access.kind if levels else "none"
        report["scan"] = f"row-at-a-time (driving access is {kind})"
    else:
        driving = levels[0]
        if not driving.filter_exprs:
            vector_eligible = True
        else:
            vector_filter = compile_batch_predicate(
                driving.filter_exprs, layout, driving.offset, driving.end
            )
            vector_eligible = vector_filter is not None
        report["scan"] = (
            "vectorized (columnar chunks)" if vector_eligible
            else "row-at-a-time (driving filters do not batch-compile)"
        )

    # Batch hash-join probing: the two-level scan→hash-join shape with a
    # batch-compilable probe key.  Deeper plans keep the recursive row loop.
    vector_join_key = None
    if len(levels) < 2:
        report["join-probe"] = "n/a (no join levels)"
    elif type(levels[1].access) is not HashJoinBuild:
        report["join-probe"] = (
            f"row-at-a-time (inner access is {levels[1].access.kind})"
        )
    elif len(levels) > 2:
        report["join-probe"] = "row-at-a-time (more than two join levels)"
    elif not vector_eligible:
        report["join-probe"] = "row-at-a-time (driving scan is row-at-a-time)"
    else:
        vector_join_key = compile_batch_expr(
            levels[1].key_ast, layout, levels[0].offset, levels[0].end
        )
        report["join-probe"] = (
            "vectorized (batch probe)" if vector_join_key is not None
            else "row-at-a-time (probe key does not batch-compile)"
        )

    vector_aggregate = None
    vector_projector = None
    partial_aggregate_spec = None
    if statement.is_aggregate_query:
        group_key_fns = [
            compile_row_expr(expr, layout, tables) for expr in statement.group_by
        ]
        having_fn = (
            compile_group_expr(statement.having, layout, tables)
            if statement.having is not None
            else None
        )
        item_group_fns = [
            compile_group_expr(item.expr, layout, tables)
            for item in statement.items
        ]
        projector = None
        identity = False
        batch_projector = None
        report["projection"] = "n/a (aggregate query)"
        if not vector_eligible:
            report["aggregate"] = (
                "row-at-a-time (driving scan is row-at-a-time)"
            )
        else:
            vector_aggregate = compile_batch_aggregate(
                statement, layout, item_group_fns, having_fn
            )
            report["aggregate"] = (
                "vectorized (per-group column folds)"
                if vector_aggregate is not None
                else "row-at-a-time (group keys or aggregate arguments do "
                     "not batch-compile)"
            )
        partial_aggregate_spec = _classify_partial_aggregate(
            statement, levels, layout
        )
    else:
        group_key_fns = None
        having_fn = None
        item_group_fns = None
        projector, identity, projection_slots = _compile_projection(
            statement, layout, tables
        )
        if projection_slots is not None and len(projection_slots) > 1:
            batch_projector = itemgetter(*projection_slots)
        elif projection_slots is not None:
            slot = projection_slots[0]
            batch_projector = lambda row: (row[slot],)  # noqa: E731
        else:
            batch_projector = None
        report["aggregate"] = "n/a (not an aggregate query)"
        if not vector_eligible:
            report["projection"] = (
                "row-at-a-time (driving scan is row-at-a-time)"
            )
        elif batch_projector is not None or identity:
            report["projection"] = "vectorized (slot projection)"
        else:
            raw_projector = compile_batch_projection(statement, layout)
            if raw_projector is None:
                report["projection"] = (
                    "row-at-a-time (projection does not batch-compile)"
                )
            else:
                report["projection"] = "vectorized (batch expressions)"
                row_projector = projector

                def vector_projector(rows, ctx, _batch=raw_projector,
                                     _row=row_projector):
                    try:
                        return _batch(rows, ctx)
                    except Exception:  # lint: allow-broad-except
                        # Batch items are pure (no subqueries batch-compile),
                        # so replaying the row projector reproduces the row
                        # engine's exact error and evaluation order.
                        return [_row(row, ctx) for row in rows]

    order_spec = _compile_order(statement, columns, layout, tables)

    # ORDER BY + LIMIT pushdown eligibility: single-level non-aggregate
    # scan plan whose lone sort key is (an output projection of) an
    # ordered-indexed column of the driving table.  Output columns shadow
    # source columns in _compile_order, so the source column is recovered
    # through the compiled spec — never by re-resolving the name directly.
    index_order: Optional[Tuple[str, bool]] = None
    if (
        len(order_spec) == 1
        and statement.limit is not None
        and not statement.distinct
        and not statement.is_aggregate_query
        and len(levels) == 1
        and type(levels[0].access) is PartitionScan
    ):
        order_kind, payload, ascending = order_spec[0]
        slot: Optional[int] = None
        if order_kind == "col":
            if identity:
                slot = payload if 0 <= payload < layout.width else None
            elif projection_slots is not None and (
                0 <= payload < len(projection_slots)
            ):
                slot = projection_slots[payload]
        elif isinstance(statement.order_by[0].expr, ColumnRef):
            try:
                slot = layout.resolve(statement.order_by[0].expr)
            except Exception:  # lint: allow-broad-except
                slot = None
        if slot is not None:
            driving = levels[0]
            if driving.offset <= slot < driving.end:
                sort_column = driving.table.schema.columns[
                    slot - driving.offset
                ].name.lower()
                if driving.table.ordered_index_for(sort_column) is not None:
                    index_order = (sort_column, ascending)

    if not order_spec:
        report["top-k"] = "n/a (no ORDER BY)"
    elif statement.limit is None:
        report["top-k"] = "full sort (no LIMIT)"
    elif statement.distinct:
        report["top-k"] = "full sort (DISTINCT dedups after ordering)"
    elif index_order is not None:
        report["top-k"] = (
            f"index-order merge (ordered index on {index_order[0]})"
        )
    else:
        report["top-k"] = "vectorized (bounded heap)"

    return QueryPlan(
        statement=statement,
        tables=tables,
        layout=layout,
        levels=levels,
        columns=columns,
        projector=projector,
        identity_projection=identity,
        group_key_fns=group_key_fns,
        having_fn=having_fn,
        item_group_fns=item_group_fns,
        order_spec=order_spec,
        distinct=statement.distinct,
        limit=statement.limit,
        offset=statement.offset,
        table_deps=statement_table_deps(statement),
        partitioned=any(table.n_partitions > 1 for _binding, table in bindings),
        subquery_plans=[
            plan_select(subselect, tables)
            for subselect in _direct_subselects(statement)
        ],
        follows_syntactic_order=(
            [level.binding for level in levels]
            == [binding for binding, _table in bindings]
        ),
        vector_eligible=vector_eligible,
        vector_filter=vector_filter,
        batch_projector=batch_projector,
        vector_aggregate=vector_aggregate,
        vector_projector=vector_projector,
        vector_join_key=vector_join_key,
        partial_aggregate_spec=partial_aggregate_spec,
        vector_report=report,
        contradiction=contradiction,
        analysis_report=analysis_report,
        index_order=index_order,
    )


# -- table dependencies ------------------------------------------------------ #


def _expr_subselects(expr: SqlExpr) -> List[SelectStatement]:
    """The *direct* scalar-subquery SELECTs of one expression.

    This is the single AST walker every dependency helper builds on: a new
    ``SqlExpr`` node kind only needs wiring here for table-dependency
    tracking (and hence per-table plan-cache invalidation) to stay correct.
    """
    found: List[SelectStatement] = []

    def visit(node: SqlExpr) -> None:
        if isinstance(node, ScalarSubquery):
            found.append(node.select)
        elif isinstance(node, BinaryOperation):
            visit(node.left)
            visit(node.right)
        elif isinstance(node, UnaryOperation):
            visit(node.operand)
        elif isinstance(node, FunctionExpr):
            for arg in node.args:
                visit(arg)
        elif isinstance(node, IsNull):
            visit(node.operand)
        elif isinstance(node, InList):
            visit(node.operand)
            for item in node.items:
                visit(item)

    visit(expr)
    return found


def _direct_subselects(select: SelectStatement) -> List[SelectStatement]:
    """Scalar subqueries appearing directly in one SELECT's clauses."""
    exprs: List[SqlExpr] = [item.expr for item in select.items]
    exprs.extend(join.on for join in select.joins if join.on is not None)
    if select.where is not None:
        exprs.append(select.where)
    exprs.extend(select.group_by)
    if select.having is not None:
        exprs.append(select.having)
    exprs.extend(item.expr for item in select.order_by)
    found: List[SelectStatement] = []
    for expr in exprs:
        found.extend(_expr_subselects(expr))
    return found


def statement_subselects(statement: SelectStatement) -> List[SelectStatement]:
    """All scalar-subquery SELECTs of a statement, outermost first."""
    found: List[SelectStatement] = []
    for subselect in _direct_subselects(statement):
        found.append(subselect)
        found.extend(statement_subselects(subselect))
    return found


def statement_table_deps(statement: SelectStatement) -> Set[str]:
    """Lowered names of every table a SELECT reads, subqueries included."""
    deps: Set[str] = set()
    for select in [statement, *statement_subselects(statement)]:
        for ref in list(select.from_tables) + [j.table for j in select.joins]:
            deps.add(ref.name.lower())
    return deps


def expr_table_deps(expr: SqlExpr) -> Set[str]:
    """Lowered names of tables an expression reads through scalar subqueries."""
    deps: Set[str] = set()
    for subselect in _expr_subselects(expr):
        deps.update(statement_table_deps(subselect))
    return deps


# -- FROM / WHERE ----------------------------------------------------------- #


def _bindings(
    statement: SelectStatement, tables: Dict[str, Table]
) -> List[Tuple[str, Table]]:
    refs: List[TableRef] = list(statement.from_tables) + [
        join.table for join in statement.joins
    ]
    if not refs:
        raise ExecutionError("SELECT requires at least one table")
    bindings: List[Tuple[str, Table]] = []
    seen = set()
    for ref in refs:
        table = tables.get(ref.name.lower())
        if table is None:
            raise SchemaError(f"unknown table {ref.name!r}")
        binding = ref.binding.lower()
        if binding in seen:
            raise ExecutionError(f"duplicate table binding {ref.binding!r}")
        seen.add(binding)
        bindings.append((binding, table))
    return bindings


def _conjuncts(statement: SelectStatement) -> List[SqlExpr]:
    conjuncts: List[SqlExpr] = []
    for join in statement.joins:
        if join.on is not None:
            conjuncts.extend(_split_and(join.on))
    if statement.where is not None:
        conjuncts.extend(_split_and(statement.where))
    return conjuncts


def _split_and(expr: SqlExpr) -> List[SqlExpr]:
    if isinstance(expr, BinaryOperation) and expr.op is BinaryOperator.AND:
        return _split_and(expr.left) + _split_and(expr.right)
    return [expr]


def _required_bindings(
    expr: SqlExpr, bindings: List[Tuple[str, Table]]
) -> Set[str]:
    """The table bindings that must be bound before ``expr`` can be evaluated.

    Qualified column references require their binding; unqualified ones
    require every binding whose table declares a column of that name.  Scalar
    subqueries are self-contained and require nothing from the outer query.
    """
    refs: Set[str] = set()

    def visit(node: SqlExpr) -> None:
        if isinstance(node, ColumnRef):
            if node.table is not None:
                refs.add(node.table.lower())
            else:
                name = node.name.lower()
                for binding, table in bindings:
                    if name in (c.name.lower() for c in table.schema.columns):
                        refs.add(binding)
        elif isinstance(node, BinaryOperation):
            visit(node.left)
            visit(node.right)
        elif isinstance(node, UnaryOperation):
            visit(node.operand)
        elif isinstance(node, FunctionExpr):
            for arg in node.args:
                visit(arg)
        elif isinstance(node, IsNull):
            visit(node.operand)
        elif isinstance(node, InList):
            visit(node.operand)
            for item in node.items:
                visit(item)

    visit(expr)
    return refs


# -- cardinality estimation -------------------------------------------------- #

#: Assumed selectivity of an equality filter on a column with no index (and
#: of a hash-join probe, whose build side has no distinct-key statistics).
_EQ_SELECTIVITY = 0.1
#: Assumed selectivity of a range comparison.
_RANGE_SELECTIVITY = 1 / 3
#: Assumed selectivity of IS [NOT] NULL and other unmodelled predicates.
_OTHER_SELECTIVITY = 0.5


def _filter_selectivity(predicate: SqlExpr) -> float:
    if isinstance(predicate, BinaryOperation):
        op = predicate.op
        if op is BinaryOperator.EQ:
            return _EQ_SELECTIVITY
        if op in (
            BinaryOperator.LT,
            BinaryOperator.LE,
            BinaryOperator.GT,
            BinaryOperator.GE,
        ):
            return _RANGE_SELECTIVITY
        if op is BinaryOperator.NE:
            return 1.0 - _EQ_SELECTIVITY
    if isinstance(predicate, InList):
        return min(1.0, _EQ_SELECTIVITY * max(len(predicate.items), 1))
    if isinstance(predicate, IsNull):
        return _OTHER_SELECTIVITY
    return _OTHER_SELECTIVITY


def _probe_estimate(
    statistics: TableStatistics, column: str, indexed: bool
) -> float:
    """Expected matches of one equality probe, from maintained statistics."""
    rows = statistics.row_count
    if indexed:
        distinct = statistics.distinct_for(column)
        if distinct:
            return rows / distinct
        return 0.0 if rows == 0 else float(rows)
    return rows * _EQ_SELECTIVITY


def _interval_exprs(
    binding: str, intervals: Dict[Tuple[str, str], RangeInterval]
) -> Dict[int, Tuple[str, RangeInterval]]:
    """Map ``id(conjunct) → (column, interval)`` for one binding's plan-time
    literal range intervals (see :attr:`~repro.relalg.semantics.Analysis.\
intervals`)."""
    index: Dict[int, Tuple[str, RangeInterval]] = {}
    for (bound_to, column), interval in intervals.items():
        if bound_to != binding:
            continue
        for expr in (interval.lo_expr, interval.hi_expr):
            if expr is not None:
                index[id(expr)] = (column, interval)
    return index


def _interval_fraction(
    statistics: Optional[TableStatistics], column: str, interval: RangeInterval
) -> float:
    """Selectivity of one literal range interval, histogram-backed when the
    column maintains one (ordered indexes over numeric columns)."""
    histogram = statistics.histogram_for(column) if statistics else None
    if histogram is not None:
        try:
            return histogram.estimate_fraction(interval.lo, interval.hi)
        except TypeError:
            pass
    return _RANGE_SELECTIVITY


def _range_probe_estimate(
    statistics: TableStatistics, column: str, interval: Optional[RangeInterval]
) -> float:
    """Expected matches of one ordered-index range probe."""
    rows = statistics.row_count
    if interval is not None:
        histogram = statistics.histogram_for(column)
        if histogram is not None:
            try:
                return histogram.estimate_rows(interval.lo, interval.hi)
            except TypeError:
                pass
    return rows * _RANGE_SELECTIVITY


def _residual_selectivity(
    applicable: List[SqlExpr],
    used: Any,
    interval_exprs: Optional[Dict[int, Tuple[str, RangeInterval]]] = None,
    statistics: Optional[TableStatistics] = None,
) -> float:
    """Combined selectivity of a level's residual filters.

    ``used`` names the conjunct(s) an access path consumed (a single
    expression or a list of them).  Range conjuncts the semantic analysis
    folded into one plan-time interval are costed *once per interval* —
    via the column's equi-width histogram when one is maintained, the fixed
    range selectivity otherwise — instead of multiplying each bound's
    selectivity independently (``x > 3 AND x < 9`` is one interval, not two
    independent coin flips).
    """
    if used is None:
        used_ids: Set[int] = set()
    elif isinstance(used, (list, tuple, set, frozenset)):
        used_ids = {id(p) for p in used}
    else:
        used_ids = {id(used)}
    selectivity = 1.0
    counted: Set[int] = set()
    for predicate in applicable:
        if id(predicate) in used_ids:
            continue
        hit = interval_exprs.get(id(predicate)) if interval_exprs else None
        if hit is not None:
            column, interval = hit
            if id(interval) in counted:
                continue
            counted.add(id(interval))
            selectivity *= _interval_fraction(statistics, column, interval)
            continue
        selectivity *= _filter_selectivity(predicate)
    return selectivity


# -- join ordering and access-path selection -------------------------------- #


def _probe_candidate(
    table: Table,
    binding: str,
    predicates: List[SqlExpr],
    already_bound: Set[str],
    bindings: List[Tuple[str, Table]],
    indexed: bool,
) -> Optional[Tuple[str, SqlExpr, SqlExpr]]:
    """First equality conjunct usable as a probe on ``table``.

    ``indexed=True`` looks for an index probe (mirroring the interpreted
    engine's choice exactly); ``indexed=False`` looks for a hash-join probe:
    an *unindexed* column equated with an expression over at least one
    already-bound binding (a constant equality stays a plain filter — hashing
    a whole table to probe it with one constant would only reshuffle work).

    Returns ``(column_name, key_expression, predicate)`` or ``None``.
    """
    for predicate in predicates:
        if not (
            isinstance(predicate, BinaryOperation)
            and predicate.op is BinaryOperator.EQ
        ):
            continue
        for this, other in (
            (predicate.left, predicate.right),
            (predicate.right, predicate.left),
        ):
            if not isinstance(this, ColumnRef):
                continue
            if this.table is not None and this.table.lower() != binding:
                continue
            if this.table is None and not _column_in_table(table, this.name):
                continue
            has_index = table.index_for(this.name) is not None
            if indexed != has_index:
                continue
            other_required = _required_bindings(other, bindings)
            if not other_required <= already_bound:
                continue
            if not indexed and not other_required:
                continue
            return this.name, other, predicate
    return None


_RANGE_OPERATORS = frozenset(
    (BinaryOperator.LT, BinaryOperator.LE, BinaryOperator.GT, BinaryOperator.GE)
)
#: ``literal op col`` normalised to ``col op literal``.
_FLIPPED_RANGE = {
    BinaryOperator.LT: BinaryOperator.GT,
    BinaryOperator.LE: BinaryOperator.GE,
    BinaryOperator.GT: BinaryOperator.LT,
    BinaryOperator.GE: BinaryOperator.LE,
}


def _range_candidate(
    table: Table,
    binding: str,
    predicates: List[SqlExpr],
    already_bound: Set[str],
    bindings: List[Tuple[str, Table]],
) -> Optional[Tuple[str, Optional[SqlExpr], bool, Optional[SqlExpr], bool,
                    List[SqlExpr]]]:
    """First sargable range-conjunct group usable as an ordered-index probe.

    For the first ordered-indexed column of ``table`` with at least one
    sargable range conjunct (``col < expr``, ``expr >= col``, … — the bound
    expression computable from already-bound levels and subquery-free, so
    subquery execution counts stay per-row like the reference engine),
    collects one lower and one upper bound; any further range conjuncts on
    the column stay residual filters.

    Returns ``(column, lo_expr, lo_inclusive, hi_expr, hi_inclusive,
    consumed conjuncts)`` or ``None``.
    """
    if not any(index.ordered for index in table.indexes.values()):
        return None
    found: Dict[str, List[Tuple[BinaryOperator, SqlExpr, SqlExpr]]] = {}
    order: List[str] = []
    for predicate in predicates:
        if not (
            isinstance(predicate, BinaryOperation)
            and predicate.op in _RANGE_OPERATORS
        ):
            continue
        for this, other, op in (
            (predicate.left, predicate.right, predicate.op),
            (predicate.right, predicate.left, _FLIPPED_RANGE[predicate.op]),
        ):
            if not isinstance(this, ColumnRef):
                continue
            if this.table is not None and this.table.lower() != binding:
                continue
            if this.table is None and not _column_in_table(table, this.name):
                continue
            column = this.name.lower()
            if table.ordered_index_for(column) is None:
                continue
            if expr_has_subquery(other):
                continue
            if not _required_bindings(other, bindings) <= already_bound:
                continue
            if column not in found:
                found[column] = []
                order.append(column)
            found[column].append((op, other, predicate))
            break
    for column in order:
        lo: Optional[SqlExpr] = None
        hi: Optional[SqlExpr] = None
        lo_incl = hi_incl = True
        used: List[SqlExpr] = []
        for op, other, predicate in found[column]:
            if op in (BinaryOperator.GT, BinaryOperator.GE) and lo is None:
                lo = other
                lo_incl = op is BinaryOperator.GE
                used.append(predicate)
            elif op in (BinaryOperator.LT, BinaryOperator.LE) and hi is None:
                hi = other
                hi_incl = op is BinaryOperator.LE
                used.append(predicate)
        if used:
            return column, lo, lo_incl, hi, hi_incl, used
    return None


def _plan_levels(
    bindings: List[Tuple[str, Table]],
    conjuncts: List[SqlExpr],
    required: Dict[int, Set[str]],
    layout: SlotLayout,
    tables: Dict[str, Table],
    intervals: Optional[Dict[Tuple[str, str], RangeInterval]] = None,
) -> List[_Level]:
    remaining = list(bindings)
    pending = list(conjuncts)
    bound: Set[str] = set()
    levels: List[_Level] = []
    statistics: Dict[str, TableStatistics] = {
        binding: table.statistics() for binding, table in bindings
    }
    intervals = intervals if intervals is not None else {}
    interval_index: Dict[str, Dict[int, Tuple[str, RangeInterval]]] = {
        binding: _interval_exprs(binding, intervals)
        for binding, _table in bindings
    }

    def applicable_for(binding: str) -> List[SqlExpr]:
        visible = bound | {binding}
        return [p for p in pending if required[id(p)] <= visible]

    def cheapest(estimator) -> Optional[Tuple[str, Table]]:
        """The remaining binding with the smallest estimate (``None`` skips);
        ties resolve to syntactic order."""
        best: Optional[Tuple[float, Tuple[str, Table]]] = None
        for candidate in remaining:
            estimate = estimator(candidate)
            if estimate is None:
                continue
            if best is None or estimate < best[0]:
                best = (estimate, candidate)
        return best[1] if best is not None else None

    def probe_tier_estimate(
        candidate: Tuple[str, Table], indexed: bool
    ) -> Optional[float]:
        binding, table = candidate
        applicable = applicable_for(binding)
        probe = _probe_candidate(
            table, binding, applicable, bound, bindings, indexed=indexed
        )
        if probe is None:
            return None
        column, _key_expr, used = probe
        return _probe_estimate(
            statistics[binding], column, indexed=indexed
        ) * _residual_selectivity(
            applicable, used, interval_index[binding], statistics[binding]
        )

    def range_tier_estimate(
        candidate: Tuple[str, Table]
    ) -> Optional[float]:
        binding, table = candidate
        applicable = applicable_for(binding)
        found = _range_candidate(table, binding, applicable, bound, bindings)
        if found is None:
            return None
        column, _lo, _li, _hi, _hi_i, used = found
        table_stats = statistics[binding]
        return _range_probe_estimate(
            table_stats, column, intervals.get((binding, column))
        ) * _residual_selectivity(
            applicable, used, interval_index[binding], table_stats
        )

    def first_filtered_scan() -> Optional[Tuple[str, Table]]:
        for candidate in remaining:
            if applicable_for(candidate[0]):
                return candidate
        return None

    while remaining:
        # Tier order is bound-predicate availability (probe kinds before
        # plain filters).  Within the probe tiers the statistics pick the
        # cheapest candidate by estimated cardinality — any choice there
        # keeps an indexed/hashed access path, so the estimate is the right
        # discriminator.  The plain-filter scan tier deliberately keeps
        # syntactic order: reordering scans by output estimate ignores the
        # scan/build cost it forces on the level itself, and it would break
        # the physical-counter contract with the reference engine (whose
        # nested loops always follow syntactic order) on the A1 ablation
        # workloads.
        choice = (
            cheapest(lambda c: probe_tier_estimate(c, indexed=True))
            or cheapest(range_tier_estimate)
            or cheapest(lambda c: probe_tier_estimate(c, indexed=False))
            or first_filtered_scan()
            or remaining[0]
        )
        remaining.remove(choice)
        binding, table = choice
        applicable = applicable_for(binding)
        bound.add(binding)
        # Partition by identity, not structural equality: duplicate conjuncts
        # (e.g. ``WHERE a = 1 AND a = 1``) are distinct nodes and each must be
        # filed exactly once.
        applied_ids = {id(p) for p in applicable}
        pending = [p for p in pending if id(p) not in applied_ids]

        table_stats = statistics[binding]
        probe = _probe_candidate(
            table, binding, applicable, bound - {binding},
            bindings, indexed=True,
        )
        access: AccessPath
        key_ast: Optional[SqlExpr] = None
        if probe is not None:
            column, key_expr, used = probe
            key_ast = key_expr
            access = IndexProbe(
                column.lower(),
                compile_row_expr(key_expr, layout, tables),
                compile_row_expr(used, layout, tables),
                pruned=(
                    table.n_partitions > 1
                    and column.lower() == table.partition_column
                ),
            )
            filters = [p for p in applicable if p is not used]
            estimate = _probe_estimate(
                table_stats, column, indexed=True
            ) * _residual_selectivity(
                applicable, used, interval_index[binding], table_stats
            )
        elif (
            found := _range_candidate(
                table, binding, applicable, bound - {binding}, bindings
            )
        ) is not None:
            column, lo_expr, lo_incl, hi_expr, hi_incl, used_list = found
            access = RangeProbe(
                column,
                (
                    compile_row_expr(lo_expr, layout, tables)
                    if lo_expr is not None else None
                ),
                lo_incl,
                (
                    compile_row_expr(hi_expr, layout, tables)
                    if hi_expr is not None else None
                ),
                hi_incl,
                [compile_row_expr(p, layout, tables) for p in used_list],
            )
            used_ids = {id(p) for p in used_list}
            filters = [p for p in applicable if id(p) not in used_ids]
            estimate = _range_probe_estimate(
                table_stats, column, intervals.get((binding, column))
            ) * _residual_selectivity(
                applicable, used_list, interval_index[binding], table_stats
            )
        else:
            probe = _probe_candidate(
                table, binding, applicable, bound - {binding},
                bindings, indexed=False,
            )
            if probe is not None:
                column, key_expr, used = probe
                key_ast = key_expr
                access = HashJoinBuild(
                    table.schema.column_index(column),
                    compile_row_expr(key_expr, layout, tables),
                )
                filters = [p for p in applicable if p is not used]
                estimate = _probe_estimate(
                    table_stats, column, indexed=False
                ) * _residual_selectivity(
                    applicable, used, interval_index[binding], table_stats
                )
            else:
                access = _SCAN
                filters = applicable
                estimate = table_stats.row_count * _residual_selectivity(
                    applicable, None, interval_index[binding], table_stats
                )

        offset, end = layout.range_of(binding)
        levels.append(
            _Level(
                binding=binding,
                table=table,
                offset=offset,
                end=end,
                access=access,
                filters=[compile_row_expr(p, layout, tables) for p in filters],
                estimate=estimate,
                filter_exprs=list(filters),
                key_ast=key_ast,
            )
        )

    if pending:
        # Conjuncts referencing unknown bindings: compiling reports the error
        # with the interpreter's message.
        for predicate in pending:
            compile_row_expr(predicate, layout, tables)
    return levels


def _column_in_table(table: Table, column: str) -> bool:
    lowered = column.lower()
    return any(c.name.lower() == lowered for c in table.schema.columns)


# -- projection / ordering --------------------------------------------------- #


def _output_columns(
    statement: SelectStatement, bindings: List[Tuple[str, Table]]
) -> List[str]:
    columns: List[str] = []
    for item in statement.items:
        if isinstance(item.expr, Star):
            for binding, table in bindings:
                if item.expr.table is not None and (
                    item.expr.table.lower() != binding
                ):
                    continue
                columns.extend(table.schema.column_names)
        else:
            columns.append(item.alias or _column_name(item.expr))
    return columns


def _column_name(expr: SqlExpr) -> str:
    if isinstance(expr, ColumnRef):
        return expr.name
    if isinstance(expr, FunctionExpr):
        return expr.name.lower()
    return "expr"


def _compile_projection(
    statement: SelectStatement, layout: SlotLayout, tables: Dict[str, Table]
) -> Tuple[Optional[Callable], bool, Optional[List[int]]]:
    """Compile the select list; detects the ``SELECT *`` identity fast path.

    The third element is the flat slot list when the whole select list is
    slot-addressed (``*`` expansions and plain column references) — the
    vectorized execution path projects those via one C-level ``itemgetter``
    per row instead of a closure call; ``None`` when any item needs real
    expression evaluation.
    """
    parts: List[Tuple[str, Any]] = []
    for item in statement.items:
        if isinstance(item.expr, Star):
            slots: List[int] = []
            for binding, _table in layout.bindings:
                if item.expr.table is not None and (
                    item.expr.table.lower() != binding
                ):
                    continue
                offset, end = layout.range_of(binding)
                slots.extend(range(offset, end))
            parts.append(("slots", slots))
        elif isinstance(item.expr, ColumnRef):
            parts.append(("slots", [layout.resolve(item.expr)]))
        else:
            parts.append(("fn", compile_row_expr(item.expr, layout, tables)))

    if (
        len(parts) == 1
        and parts[0][0] == "slots"
        and parts[0][1] == list(range(layout.width))
    ):
        return None, True, list(range(layout.width))

    if all(kind == "slots" for kind, _ in parts):
        slots = [slot for _, payload in parts for slot in payload]
        return (lambda row, ctx: tuple(row[s] for s in slots)), False, slots

    def project(row: Tuple[Any, ...], ctx: ExecContext) -> Tuple[Any, ...]:
        values: List[Any] = []
        for kind, payload in parts:
            if kind == "slots":
                values.extend(row[s] for s in payload)
            else:
                values.append(payload(row, ctx))
        return tuple(values)

    return project, False, None


def _compile_order(
    statement: SelectStatement,
    columns: List[str],
    layout: SlotLayout,
    tables: Dict[str, Table],
) -> List[Tuple[str, Any, bool]]:
    """Compile ORDER BY items: output-column positions or source-row closures."""
    if not statement.order_by:
        return []
    lowered = [c.lower() for c in columns]
    spec: List[Tuple[str, Any, bool]] = []
    for item in statement.order_by:
        expr = item.expr
        if isinstance(expr, ColumnRef) and expr.table is None and (
            expr.name.lower() in lowered
        ):
            spec.append(("col", lowered.index(expr.name.lower()), item.ascending))
        elif isinstance(expr, Literal) and isinstance(expr.value, int):
            spec.append(("col", expr.value - 1, item.ascending))
        elif statement.is_aggregate_query:
            # `ORDER BY COUNT(*)` names no output column, but the expression
            # may *be* one of the output expressions (position-insensitive
            # structural equality) — match those before rejecting.
            matched: Optional[int] = None
            for index, out_item in enumerate(statement.items):
                if out_item.expr == expr:
                    matched = index
                    break
            if matched is None:
                raise ExecutionError(
                    "ORDER BY of an aggregate query must reference output "
                    "columns"
                )
            spec.append(("col", matched, item.ascending))
        else:
            spec.append(
                ("expr", compile_row_expr(expr, layout, tables), item.ascending)
            )
    return spec
