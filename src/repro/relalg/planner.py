"""Plan-then-execute query planning for the relational engine.

The interpreted engine (:mod:`repro.relalg.interp`) re-derives everything per
statement execution — and much of it per *row*: which conjunct applies at
which join level, whether an index probe is possible, how a column name maps
into the row environment.  This module does all of that exactly once per
statement:

* :func:`plan_select` turns a parsed ``SELECT`` into a :class:`QueryPlan`:
  a join order (chosen greedily by *bound-predicate availability*), one
  access path per table binding (index probe / hash-join probe / scan), the
  residual filters of every level, and compiled projection / aggregation /
  ordering closures (see :mod:`repro.relalg.compile`);
* :class:`QueryPlan.execute` runs the plan against the live tables — the
  plan is parameter-free and is reused across executions and parameter
  bindings (the statement-level plan cache lives in
  :class:`repro.relalg.database.Database`, keyed by SQL text).

Access-path selection per level, in order of preference:

1. **index probe** — an equality conjunct ``col = expr`` where ``col`` is an
   indexed column of this binding and ``expr`` is computable from the levels
   already bound (this matches the interpreted engine's probe choice, so
   :class:`~repro.relalg.rowset.QueryStats` stay byte-identical on the A1
   ablation queries);
2. **hash-join probe** — an equality conjunct joining an *unindexed* column
   of this binding to an expression over already-bound levels: the table is
   scanned once per execution into a transient hash table and probed per
   outer row, replacing the interpreter's O(outer × inner) rescans;
3. **scan** — everything else; applicable conjuncts become filters.

NULL join keys never match (both probe kinds), matching ``=`` semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.relalg.compile import (
    ExecContext,
    GroupFn,
    RowFn,
    SlotLayout,
    compile_group_expr,
    compile_row_expr,
)
from repro.relalg.errors import ExecutionError, SchemaError
from repro.relalg.rowset import QueryStats, ResultSet, _SortKey, _hashable, _is_true
from repro.relalg.sqlast import (
    BinaryOperation,
    BinaryOperator,
    ColumnRef,
    FunctionExpr,
    InList,
    IsNull,
    Literal,
    SelectStatement,
    SqlExpr,
    Star,
    TableRef,
    UnaryOperation,
)
from repro.relalg.storage import Table

__all__ = ["QueryPlan", "plan_select"]


# --------------------------------------------------------------------------- #
# access paths
# --------------------------------------------------------------------------- #


class _ScanAccess:
    __slots__ = ()
    kind = "scan"


class _IndexProbe:
    __slots__ = ("column", "key", "fallback")
    kind = "index-probe"

    def __init__(self, column: str, key: RowFn, fallback: RowFn) -> None:
        self.column = column
        self.key = key
        #: The compiled probe predicate, applied as a plain filter if the
        #: index disappears behind the plan cache's back (direct
        #: ``Table.drop_index`` calls bypass the schema epoch).
        self.fallback = fallback


class _HashProbe:
    __slots__ = ("col_index", "key")
    kind = "hash-probe"

    def __init__(self, col_index: int, key: RowFn) -> None:
        self.col_index = col_index
        self.key = key


_SCAN = _ScanAccess()


class _Level:
    """One join level: a table binding, its access path and its filters."""

    __slots__ = ("binding", "table", "offset", "end", "access", "filters")

    def __init__(
        self,
        binding: str,
        table: Table,
        offset: int,
        end: int,
        access: Any,
        filters: List[RowFn],
    ) -> None:
        self.binding = binding
        self.table = table
        self.offset = offset
        self.end = end
        self.access = access
        self.filters = filters


# --------------------------------------------------------------------------- #
# the plan
# --------------------------------------------------------------------------- #


@dataclass
class QueryPlan:
    """A fully compiled SELECT: reusable across executions and parameters."""

    statement: SelectStatement
    tables: Dict[str, Table]
    layout: SlotLayout
    levels: List[_Level]
    columns: List[str]
    #: ``None`` for aggregate queries.
    projector: Optional[Callable[[Tuple[Any, ...], ExecContext], Tuple[Any, ...]]]
    #: Shortcut: the projection is the identity over the full slot row.
    identity_projection: bool
    #: Aggregate machinery (``None`` entries for non-aggregate queries).
    group_key_fns: Optional[List[RowFn]]
    having_fn: Optional[GroupFn]
    item_group_fns: Optional[List[GroupFn]]
    #: ORDER BY: ('col', output_index, ascending) | ('expr', row_fn, ascending)
    order_spec: List[Tuple[str, Any, bool]]
    distinct: bool
    limit: Optional[int]

    # ------------------------------------------------------------------ #

    def execute(
        self, params: Sequence[Any] = (), stats: Optional[QueryStats] = None
    ) -> ResultSet:
        """Run the plan and return the materialised result."""
        stats = stats if stats is not None else QueryStats()
        ctx = ExecContext(self.tables, params, stats)
        rows = self._enumerate(ctx)

        if self.item_group_fns is not None:
            result_rows = self._aggregate(rows, ctx)
        elif self.identity_projection:
            result_rows = list(rows)
        else:
            projector = self.projector
            result_rows = [projector(row, ctx) for row in rows]

        if self.order_spec:
            result_rows = self._order(rows, result_rows, ctx)

        if self.distinct:
            seen = set()
            unique: List[Tuple[Any, ...]] = []
            for row in result_rows:
                key = tuple(_hashable(v) for v in row)
                if key not in seen:
                    seen.add(key)
                    unique.append(row)
            result_rows = unique

        if self.limit is not None:
            result_rows = result_rows[: self.limit]

        stats.rows_returned += len(result_rows)
        return ResultSet(columns=list(self.columns), rows=result_rows, stats=stats)

    def describe(self) -> List[Dict[str, Any]]:
        """Plan shape for tests and EXPLAIN-style debugging."""
        return [
            {
                "binding": level.binding,
                "table": level.table.name,
                "access": level.access.kind,
                "filters": len(level.filters),
            }
            for level in self.levels
        ]

    # ------------------------------------------------------------------ #

    def _enumerate(self, ctx: ExecContext) -> List[Tuple[Any, ...]]:
        """Nested-loop/hash join over the planned levels; returns slot rows."""
        levels = self.levels
        depth = len(levels)
        stats = ctx.stats
        row: List[Any] = [None] * self.layout.width
        out: List[Tuple[Any, ...]] = []
        append = out.append

        def recurse(index: int) -> None:
            if index == depth:
                append(tuple(row))
                return
            level = levels[index]
            table = level.table
            access = level.access
            filters = level.filters
            if type(access) is _IndexProbe:
                hash_index = table.index_for(access.column)
                if hash_index is None:
                    # Stale plan (index dropped directly on the table): scan
                    # and re-apply the probe predicate as a filter.
                    candidates: Any = table.scan()
                    filters = filters + [access.fallback]
                else:
                    key = access.key(row, ctx)
                    stats.index_lookups += 1
                    if key is None:
                        candidates = ()
                    else:
                        stored_rows = table.rows
                        candidates = [
                            stored
                            for position in hash_index.lookup(key)
                            if (stored := stored_rows[position]) is not None
                        ]
            elif type(access) is _HashProbe:
                hash_table = ctx.hash_tables.get(index)
                if hash_table is None:
                    hash_table = {}
                    col_index = access.col_index
                    built = 0
                    for stored in table.scan():
                        built += 1
                        value = stored[col_index]
                        if value is not None:
                            hash_table.setdefault(value, []).append(stored)
                    stats.rows_scanned += built
                    ctx.hash_tables[index] = hash_table
                key = access.key(row, ctx)
                stats.hash_probes += 1
                candidates = () if key is None else hash_table.get(key, ())
            else:
                candidates = table.scan()
            offset, end = level.offset, level.end
            next_index = index + 1
            scanned = 0
            if filters:
                for candidate in candidates:
                    scanned += 1
                    row[offset:end] = candidate
                    for predicate in filters:
                        if not predicate(row, ctx):
                            break
                    else:
                        recurse(next_index)
            else:
                for candidate in candidates:
                    scanned += 1
                    row[offset:end] = candidate
                    recurse(next_index)
            stats.rows_scanned += scanned

        recurse(0)
        # Every fully joined slot row passed all its predicates en route.
        stats.rows_joined += len(out)
        return out

    def _aggregate(
        self, rows: List[Tuple[Any, ...]], ctx: ExecContext
    ) -> List[Tuple[Any, ...]]:
        key_fns = self.group_key_fns
        groups: Dict[Tuple[Any, ...], List[Tuple[Any, ...]]] = {}
        order: List[Tuple[Any, ...]] = []
        if key_fns:
            for row in rows:
                key = tuple(_hashable(fn(row, ctx)) for fn in key_fns)
                group = groups.get(key)
                if group is None:
                    groups[key] = group = []
                    order.append(key)
                group.append(row)
        else:
            groups[()] = rows
            order.append(())
        having = self.having_fn
        item_fns = self.item_group_fns
        result: List[Tuple[Any, ...]] = []
        for key in order:
            group = groups[key]
            if having is not None and not _is_true(having(group, ctx)):
                continue
            result.append(tuple(fn(group, ctx) for fn in item_fns))
        return result

    def _order(
        self,
        rows: List[Tuple[Any, ...]],
        result_rows: List[Tuple[Any, ...]],
        ctx: ExecContext,
    ) -> List[Tuple[Any, ...]]:
        spec = self.order_spec

        def key_for(position: int) -> Tuple[_SortKey, ...]:
            keys = []
            for kind, payload, ascending in spec:
                if kind == "col":
                    value = result_rows[position][payload]
                else:
                    value = payload(rows[position], ctx)
                keys.append(_SortKey(value, ascending))
            return tuple(keys)

        positions = sorted(range(len(result_rows)), key=key_for)
        return [result_rows[p] for p in positions]


# --------------------------------------------------------------------------- #
# planning
# --------------------------------------------------------------------------- #


def plan_select(statement: SelectStatement, tables: Dict[str, Table]) -> QueryPlan:
    """Plan (and compile) one SELECT statement against a table catalog."""
    bindings = _bindings(statement, tables)
    layout = SlotLayout(bindings)
    conjuncts = _conjuncts(statement)
    required = {
        id(conjunct): _required_bindings(conjunct, bindings)
        for conjunct in conjuncts
    }
    levels = _plan_levels(bindings, conjuncts, required, layout, tables)
    columns = _output_columns(statement, bindings)

    if statement.is_aggregate_query:
        group_key_fns = [
            compile_row_expr(expr, layout, tables) for expr in statement.group_by
        ]
        having_fn = (
            compile_group_expr(statement.having, layout, tables)
            if statement.having is not None
            else None
        )
        item_group_fns = [
            compile_group_expr(item.expr, layout, tables)
            for item in statement.items
        ]
        projector = None
        identity = False
    else:
        group_key_fns = None
        having_fn = None
        item_group_fns = None
        projector, identity = _compile_projection(statement, layout, tables)

    order_spec = _compile_order(statement, columns, layout, tables)

    return QueryPlan(
        statement=statement,
        tables=tables,
        layout=layout,
        levels=levels,
        columns=columns,
        projector=projector,
        identity_projection=identity,
        group_key_fns=group_key_fns,
        having_fn=having_fn,
        item_group_fns=item_group_fns,
        order_spec=order_spec,
        distinct=statement.distinct,
        limit=statement.limit,
    )


# -- FROM / WHERE ----------------------------------------------------------- #


def _bindings(
    statement: SelectStatement, tables: Dict[str, Table]
) -> List[Tuple[str, Table]]:
    refs: List[TableRef] = list(statement.from_tables) + [
        join.table for join in statement.joins
    ]
    if not refs:
        raise ExecutionError("SELECT requires at least one table")
    bindings: List[Tuple[str, Table]] = []
    seen = set()
    for ref in refs:
        table = tables.get(ref.name.lower())
        if table is None:
            raise SchemaError(f"unknown table {ref.name!r}")
        binding = ref.binding.lower()
        if binding in seen:
            raise ExecutionError(f"duplicate table binding {ref.binding!r}")
        seen.add(binding)
        bindings.append((binding, table))
    return bindings


def _conjuncts(statement: SelectStatement) -> List[SqlExpr]:
    conjuncts: List[SqlExpr] = []
    for join in statement.joins:
        if join.on is not None:
            conjuncts.extend(_split_and(join.on))
    if statement.where is not None:
        conjuncts.extend(_split_and(statement.where))
    return conjuncts


def _split_and(expr: SqlExpr) -> List[SqlExpr]:
    if isinstance(expr, BinaryOperation) and expr.op is BinaryOperator.AND:
        return _split_and(expr.left) + _split_and(expr.right)
    return [expr]


def _required_bindings(
    expr: SqlExpr, bindings: List[Tuple[str, Table]]
) -> Set[str]:
    """The table bindings that must be bound before ``expr`` can be evaluated.

    Qualified column references require their binding; unqualified ones
    require every binding whose table declares a column of that name.  Scalar
    subqueries are self-contained and require nothing from the outer query.
    """
    refs: Set[str] = set()

    def visit(node: SqlExpr) -> None:
        if isinstance(node, ColumnRef):
            if node.table is not None:
                refs.add(node.table.lower())
            else:
                name = node.name.lower()
                for binding, table in bindings:
                    if name in (c.name.lower() for c in table.schema.columns):
                        refs.add(binding)
        elif isinstance(node, BinaryOperation):
            visit(node.left)
            visit(node.right)
        elif isinstance(node, UnaryOperation):
            visit(node.operand)
        elif isinstance(node, FunctionExpr):
            for arg in node.args:
                visit(arg)
        elif isinstance(node, IsNull):
            visit(node.operand)
        elif isinstance(node, InList):
            visit(node.operand)
            for item in node.items:
                visit(item)

    visit(expr)
    return refs


# -- join ordering and access-path selection -------------------------------- #


def _probe_candidate(
    table: Table,
    binding: str,
    predicates: List[SqlExpr],
    already_bound: Set[str],
    bindings: List[Tuple[str, Table]],
    indexed: bool,
) -> Optional[Tuple[str, SqlExpr, SqlExpr]]:
    """First equality conjunct usable as a probe on ``table``.

    ``indexed=True`` looks for an index probe (mirroring the interpreted
    engine's choice exactly); ``indexed=False`` looks for a hash-join probe:
    an *unindexed* column equated with an expression over at least one
    already-bound binding (a constant equality stays a plain filter — hashing
    a whole table to probe it with one constant would only reshuffle work).

    Returns ``(column_name, key_expression, predicate)`` or ``None``.
    """
    for predicate in predicates:
        if not (
            isinstance(predicate, BinaryOperation)
            and predicate.op is BinaryOperator.EQ
        ):
            continue
        for this, other in (
            (predicate.left, predicate.right),
            (predicate.right, predicate.left),
        ):
            if not isinstance(this, ColumnRef):
                continue
            if this.table is not None and this.table.lower() != binding:
                continue
            if this.table is None and not _column_in_table(table, this.name):
                continue
            has_index = table.index_for(this.name) is not None
            if indexed != has_index:
                continue
            other_required = _required_bindings(other, bindings)
            if not other_required <= already_bound:
                continue
            if not indexed and not other_required:
                continue
            return this.name, other, predicate
    return None


def _plan_levels(
    bindings: List[Tuple[str, Table]],
    conjuncts: List[SqlExpr],
    required: Dict[int, Set[str]],
    layout: SlotLayout,
    tables: Dict[str, Table],
) -> List[_Level]:
    remaining = list(bindings)
    pending = list(conjuncts)
    bound: Set[str] = set()
    levels: List[_Level] = []

    def applicable_for(binding: str) -> List[SqlExpr]:
        visible = bound | {binding}
        return [p for p in pending if required[id(p)] <= visible]

    while remaining:
        choice = None
        # 1. a binding with an index probe available
        for candidate in remaining:
            binding, table = candidate
            if _probe_candidate(
                table, binding, applicable_for(binding), bound,
                bindings, indexed=True,
            ):
                choice = candidate
                break
        # 2. a binding with a hash-join probe available
        if choice is None:
            for candidate in remaining:
                binding, table = candidate
                if _probe_candidate(
                    table, binding, applicable_for(binding), bound,
                    bindings, indexed=False,
                ):
                    choice = candidate
                    break
        # 3. a binding with any applicable filter
        if choice is None:
            for candidate in remaining:
                if applicable_for(candidate[0]):
                    choice = candidate
                    break
        # 4. syntactic order
        if choice is None:
            choice = remaining[0]
        remaining.remove(choice)
        binding, table = choice
        applicable = applicable_for(binding)
        bound.add(binding)
        # Partition by identity, not structural equality: duplicate conjuncts
        # (e.g. ``WHERE a = 1 AND a = 1``) are distinct nodes and each must be
        # filed exactly once.
        applied_ids = {id(p) for p in applicable}
        pending = [p for p in pending if id(p) not in applied_ids]

        probe = _probe_candidate(
            table, binding, applicable, bound - {binding},
            bindings, indexed=True,
        )
        access: Any
        if probe is not None:
            column, key_expr, used = probe
            access = _IndexProbe(
                column,
                compile_row_expr(key_expr, layout, tables),
                compile_row_expr(used, layout, tables),
            )
            filters = [p for p in applicable if p is not used]
        else:
            probe = _probe_candidate(
                table, binding, applicable, bound - {binding},
                bindings, indexed=False,
            )
            if probe is not None:
                column, key_expr, used = probe
                access = _HashProbe(
                    table.schema.column_index(column),
                    compile_row_expr(key_expr, layout, tables),
                )
                filters = [p for p in applicable if p is not used]
            else:
                access = _SCAN
                filters = applicable

        offset, end = layout.range_of(binding)
        levels.append(
            _Level(
                binding=binding,
                table=table,
                offset=offset,
                end=end,
                access=access,
                filters=[compile_row_expr(p, layout, tables) for p in filters],
            )
        )

    if pending:
        # Conjuncts referencing unknown bindings: compiling reports the error
        # with the interpreter's message.
        for predicate in pending:
            compile_row_expr(predicate, layout, tables)
    return levels


def _column_in_table(table: Table, column: str) -> bool:
    lowered = column.lower()
    return any(c.name.lower() == lowered for c in table.schema.columns)


# -- projection / ordering --------------------------------------------------- #


def _output_columns(
    statement: SelectStatement, bindings: List[Tuple[str, Table]]
) -> List[str]:
    columns: List[str] = []
    for item in statement.items:
        if isinstance(item.expr, Star):
            for binding, table in bindings:
                if item.expr.table is not None and (
                    item.expr.table.lower() != binding
                ):
                    continue
                columns.extend(table.schema.column_names)
        else:
            columns.append(item.alias or _column_name(item.expr))
    return columns


def _column_name(expr: SqlExpr) -> str:
    if isinstance(expr, ColumnRef):
        return expr.name
    if isinstance(expr, FunctionExpr):
        return expr.name.lower()
    return "expr"


def _compile_projection(
    statement: SelectStatement, layout: SlotLayout, tables: Dict[str, Table]
) -> Tuple[Optional[Callable], bool]:
    """Compile the select list; detects the ``SELECT *`` identity fast path."""
    parts: List[Tuple[str, Any]] = []
    for item in statement.items:
        if isinstance(item.expr, Star):
            slots: List[int] = []
            for binding, _table in layout.bindings:
                if item.expr.table is not None and (
                    item.expr.table.lower() != binding
                ):
                    continue
                offset, end = layout.range_of(binding)
                slots.extend(range(offset, end))
            parts.append(("slots", slots))
        else:
            parts.append(("fn", compile_row_expr(item.expr, layout, tables)))

    if (
        len(parts) == 1
        and parts[0][0] == "slots"
        and parts[0][1] == list(range(layout.width))
    ):
        return None, True

    if all(kind == "slots" for kind, _ in parts):
        slots = [slot for _, payload in parts for slot in payload]
        return (lambda row, ctx: tuple(row[s] for s in slots)), False

    def project(row: Tuple[Any, ...], ctx: ExecContext) -> Tuple[Any, ...]:
        values: List[Any] = []
        for kind, payload in parts:
            if kind == "slots":
                values.extend(row[s] for s in payload)
            else:
                values.append(payload(row, ctx))
        return tuple(values)

    return project, False


def _compile_order(
    statement: SelectStatement,
    columns: List[str],
    layout: SlotLayout,
    tables: Dict[str, Table],
) -> List[Tuple[str, Any, bool]]:
    """Compile ORDER BY items: output-column positions or source-row closures."""
    if not statement.order_by:
        return []
    lowered = [c.lower() for c in columns]
    spec: List[Tuple[str, Any, bool]] = []
    for item in statement.order_by:
        expr = item.expr
        if isinstance(expr, ColumnRef) and expr.table is None and (
            expr.name.lower() in lowered
        ):
            spec.append(("col", lowered.index(expr.name.lower()), item.ascending))
        elif isinstance(expr, Literal) and isinstance(expr.value, int):
            spec.append(("col", expr.value - 1, item.ascending))
        elif statement.is_aggregate_query:
            raise ExecutionError(
                "ORDER BY of an aggregate query must reference output columns"
            )
        else:
            spec.append(
                ("expr", compile_row_expr(expr, layout, tables), item.ascending)
            )
    return spec
