"""The database facade: statement execution over an in-memory catalog.

:class:`Database` is the entry point of the relational substrate.  It keeps the
table catalog, parses and executes SQL statements (optionally with positional
``?`` parameters) and accumulates execution statistics.  The interface mirrors
the small subset of the Python DB-API that COSY needs (``execute``,
``executemany``, result sets), so the analyzer code reads like ordinary
database client code even though everything runs in process.

Every table the database creates is hash-partitioned by primary key into
``n_partitions`` shards (default 1: the historical single-partition layout,
byte-for-byte).  ``parallel`` plus ``executor`` select how partitioned scans
fan out:

* ``executor="sequential"`` (the default) — partitions are enumerated in
  order on the calling thread;
* ``executor="thread"`` — the driving scan level fans out over a
  ``parallel``-worker thread pool (also the historical meaning of
  ``Database(parallel=k)`` alone; GIL-bound, so the wall clock does not
  follow the per-partition makespan);
* ``executor="process"`` — the driving scan level fans out over a
  shared-nothing, spawn-safe pool of ``parallel`` worker processes
  (:class:`~repro.relalg.parallel.ProcessScanExecutor`), each owning a
  disjoint subset of every table's shards; an existing executor instance can
  be passed directly (``Database(executor=pool)``) to share one pool between
  databases.

All three return identical results and identical :class:`QueryStats`; the
database is a context manager (``with Database(...) as db:``) so worker
pools cannot leak.

Two statement-level caches, both keyed by SQL text, make repeated execution
cheap (the COSY pushdown strategy re-runs the same compiled property queries
for every analysis context):

* the **statement cache** skips re-parsing;
* the **plan cache** skips re-planning SELECTs — the cached
  :class:`~repro.relalg.planner.QueryPlan` carries compiled expression
  closures and is reused across parameter bindings.  Every plan records the
  tables it reads (bindings and scalar subqueries), and the database keeps a
  **per-table schema epoch**: DDL on one table only invalidates the plans
  that depend on that table, so hot plans survive schema churn elsewhere.

INSERT gets the same compile-once treatment on the DML side: ``executemany``
binds a cached :func:`~repro.relalg.compile.compile_insert_binder` closure per
parameter row and appends the whole batch through
:meth:`~repro.relalg.storage.Table.insert_many` (deferred index maintenance,
atomic per batch, rows spread across partitions) instead of round-tripping one
row at a time through the parser and the per-row insert path.

``engine="interpreted"`` routes SELECTs through the seed AST-walking engine
(:mod:`repro.relalg.interp`) instead; the benchmarks use it as the baseline
the compiled engine is measured against, and the differential tests use it as
the unpartitioned reference.

**Transactions and durability.**  ``BEGIN`` / ``COMMIT`` / ``ROLLBACK``
statements (or the :meth:`begin`/:meth:`commit`/:meth:`rollback` shortcuts)
group DML into an atomic unit: while a transaction is open the session reads
its own writes through the unchanged executor paths, every mutation pushes
an undo record (:class:`~repro.relalg.storage.Transaction`), rollback
restores rows, indexes, tombstones and statistics byte-for-byte, and the
partition fan-out stays snapshot-consistent — partition versions advance
only at commit, shard snapshots forwarded to worker processes contain only
committed rows, and process fan-out falls back to the sequential scan while
uncommitted DML is staged (so the local session still sees its writes).
DDL inside a transaction and nested ``BEGIN`` are refused with a typed
:class:`ExecutionError`.  ``Database(wal_path=...)`` adds crash durability
through the write-ahead log (:mod:`repro.relalg.wal`): row-image records per
DML statement, fsync at every commit point, recovery-on-open that replays
committed transactions and discards uncommitted tails, and a checkpoint/
truncate path (automatic past ``wal_autocheckpoint`` bytes, or explicit via
:meth:`checkpoint`) that bounds the log.  Without ``wal_path`` every
transactional path is pure in-memory and the autocommit behaviour is
byte-identical to the WAL-less engine.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace as _dataclass_replace
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.relalg.compile import (
    ExecContext,
    SlotLayout,
    compile_insert_binder,
    compile_row_expr,
)
from repro.relalg.errors import (
    ExecutionError,
    RecoveryError,
    SchemaError,
    TransactionWarning,
)
from repro.relalg.executor import QueryStats, ResultSet
from repro.relalg.interp import InterpretedSelectExecutor
from repro.relalg.parallel import ProcessScanExecutor
from repro.relalg.rowset import merge_partition_counts
from repro.relalg.planner import (
    QueryPlan,
    _Level,
    expr_table_deps,
    plan_select,
)
from repro.relalg.schema import Column, ColumnType, TableSchema
from repro.relalg.semantics import check_delete
from repro.relalg.sqlast import (
    BeginStatement,
    CommitStatement,
    CreateIndexStatement,
    CreateTableStatement,
    DeleteStatement,
    DropTableStatement,
    InsertStatement,
    RollbackStatement,
    SelectStatement,
    Statement,
)
from repro.relalg.sqlparser import parse_sql
from repro.relalg.storage import CHUNK_ROWS, Table, Transaction
from repro.relalg.wal import (
    WriteAheadLog,
    decode_row,
    encode_row,
    restore_state,
    row_key,
    snapshot_state,
)

__all__ = ["Database", "ExecutionSummary"]

#: A dependency snapshot: ((table, epoch), ...) — valid while every epoch holds.
_DepSnapshot = Tuple[Tuple[str, int], ...]


@dataclass
class ExecutionSummary:
    """Cumulative statistics of every statement a database has executed."""

    statements: int = 0
    selects: int = 0
    inserts: int = 0
    rows_inserted: int = 0
    rows_returned: int = 0
    rows_scanned: int = 0
    index_lookups: int = 0
    #: Scan work per storage partition (partition id → rows scanned there);
    #: empty means every scan ran against single-partition tables.
    partition_rows_scanned: Dict[int, int] = field(default_factory=dict)

    def record_select(self, stats: QueryStats) -> None:
        self.statements += 1
        self.selects += 1
        self.rows_returned += stats.rows_returned
        self.rows_scanned += stats.rows_scanned
        self.index_lookups += stats.index_lookups
        merge_partition_counts(
            self.partition_rows_scanned, stats.partition_rows_scanned
        )

    def record_insert(self, rows: int) -> None:
        self.statements += 1
        self.inserts += 1
        self.rows_inserted += rows

    def record_other(self) -> None:
        self.statements += 1


class Database:
    """An in-memory relational database with a SQL interface."""

    def __init__(
        self,
        name: str = "cosy",
        engine: str = "compiled",
        n_partitions: int = 1,
        parallel: Optional[int] = None,
        executor: Union[str, "ProcessScanExecutor", None] = None,
        wal_path: Optional[str] = None,
        wal_autocheckpoint: Optional[int] = 4_000_000,
        wal_hook=None,
        vectorized: bool = True,
        vectorized_chunk_size: int = CHUNK_ROWS,
    ) -> None:
        if engine not in ("compiled", "interpreted"):
            raise ValueError(
                f"unknown engine {engine!r} (expected 'compiled' or 'interpreted')"
            )
        if n_partitions < 1:
            raise ValueError(
                f"n_partitions must be positive, got {n_partitions}"
            )
        if parallel is not None:
            # Typed: a bad worker count should fail the constructor with the
            # engine's own error, not a bare TypeError from pool setup.
            if type(parallel) is not int:
                raise ExecutionError(
                    f"parallel must be an int >= 2 (or None), "
                    f"got {type(parallel).__name__}"
                )
            if parallel < 2:
                raise ExecutionError(
                    f"parallel must be >= 2 workers (or None), got {parallel}"
                )
        if type(vectorized_chunk_size) is not int:
            # Typed: reject here instead of failing deep inside chunk
            # building (range() with a non-int chunk size).
            raise ExecutionError(
                f"vectorized_chunk_size must be an int, "
                f"got {type(vectorized_chunk_size).__name__}"
            )
        if vectorized_chunk_size < 1:
            raise ExecutionError(
                f"vectorized_chunk_size must be positive, "
                f"got {vectorized_chunk_size}"
            )
        shared_executor: Optional[ProcessScanExecutor] = None
        if isinstance(executor, ProcessScanExecutor):
            shared_executor = executor
            executor = "process"
        elif executor is None:
            executor = "sequential" if parallel is None else "thread"
        elif executor not in ("sequential", "thread", "process"):
            raise ValueError(
                f"unknown executor {executor!r} (expected 'sequential', "
                f"'thread', 'process' or a ProcessScanExecutor instance)"
            )
        if executor == "sequential" and parallel is not None:
            raise ValueError(
                "executor='sequential' takes no parallel workers; "
                "pass executor='thread' or 'process' with parallel=k"
            )
        if (
            executor in ("thread", "process")
            and parallel is None
            and shared_executor is None
        ):
            raise ValueError(
                f"executor={executor!r} requires parallel=<worker count>"
            )
        self.name = name
        self.engine = engine
        #: Default partition count of every table this database creates.
        self.n_partitions = n_partitions
        #: Worker count of the optional partition fan-out (None = sequential
        #: unless a shared process executor was passed in).
        self.parallel = parallel
        #: Partition fan-out kind: "sequential", "thread" or "process".
        self.executor = executor
        #: Whether eligible plans drive their scans vectorized over columnar
        #: chunks (plan-time eligibility; row-at-a-time results and stats are
        #: preserved byte for byte).  ``False`` pins the row engine — the
        #: differential reference the fuzzers sweep against.
        self.vectorized = vectorized
        self.vectorized_chunk_size = vectorized_chunk_size
        self._pool = None
        #: The process pool (owned and lazily created, or shared/borrowed).
        self._process_executor = shared_executor
        self._owns_executor = shared_executor is None
        self.tables: Dict[str, Table] = {}
        self.summary = ExecutionSummary()
        self._statement_cache: Dict[str, Statement] = {}
        #: SQL text → (dependency snapshot at plan time, plan).
        self._plan_cache: Dict[str, Tuple[_DepSnapshot, QueryPlan]] = {}
        #: id(DeleteStatement) → (deps, statement ref, compiled predicate).
        #: The statement reference keeps the object alive so ids stay unique.
        self._delete_predicate_cache: Dict[
            int, Tuple[_DepSnapshot, Statement, Any]
        ] = {}
        #: id(InsertStatement) → (deps, statement ref, compiled binder) —
        #: the DML counterpart of the plan cache (see ``compile_insert_binder``).
        self._insert_binder_cache: Dict[
            int, Tuple[_DepSnapshot, Statement, Any]
        ] = {}
        #: Global DDL counter (kept for introspection; invalidation is per
        #: table via ``_table_epochs``).
        self._schema_epoch = 0
        #: lowered table name → epoch, bumped by every DDL touching the table.
        self._table_epochs: Dict[str, int] = {}
        self._plan_hits = 0
        self._plan_misses = 0
        #: The open explicit transaction (None in autocommit).
        self._txn: Optional[Transaction] = None
        self._txn_counter = 0
        #: The write-ahead log (None without ``wal_path``); ``_wal_replaying``
        #: suppresses logging while recovery replays the log into the catalog.
        self._wal: Optional[WriteAheadLog] = None
        self._wal_replaying = False
        self._wal_gen = 0
        self._wal_autocheckpoint = wal_autocheckpoint
        if wal_path is not None:
            self._wal = WriteAheadLog(wal_path, hook=wal_hook)
            self._recover_wal()

    # ------------------------------------------------------------------ #
    # schema management (programmatic)
    # ------------------------------------------------------------------ #

    def create_table(
        self, schema: TableSchema, n_partitions: Optional[int] = None
    ) -> Table:
        """Create a table from a programmatic schema definition.

        ``n_partitions`` overrides the database default for this table.
        """
        self._require_autocommit("CREATE TABLE")
        key = schema.name.lower()
        if key in self.tables:
            raise SchemaError(f"table {schema.name!r} already exists")
        table = Table(
            schema,
            n_partitions=(
                n_partitions if n_partitions is not None else self.n_partitions
            ),
        )
        self.tables[key] = table
        self._bump_table_epoch(key)
        self._wal_log(
            {
                "t": "create_table",
                "table": schema.name,
                "n_partitions": table.n_partitions,
                "columns": [
                    [c.name, c.type.value, c.nullable, c.primary_key]
                    for c in schema.columns
                ],
            },
            "ddl",
            sync=True,
        )
        return table

    def drop_table(self, name: str, if_exists: bool = False) -> None:
        """Remove a table (and its data and indexes)."""
        self._require_autocommit("DROP TABLE")
        key = name.lower()
        if key not in self.tables:
            if if_exists:
                return
            raise SchemaError(f"unknown table {name!r}")
        dropped = self.tables.pop(key)
        self._bump_table_epoch(key)
        self._wal_log(
            {"t": "drop_table", "table": dropped.name}, "ddl", sync=True
        )
        if self._process_executor is not None:
            # Drop the worker-side shard replicas with the table, so a
            # long-lived pool under DROP/CREATE churn does not accumulate
            # dead generations (each generation has a fresh table uid).
            self._process_executor.forget([dropped.uid])

    def table(self, name: str) -> Table:
        """Look up a table by name (case-insensitive)."""
        try:
            return self.tables[name.lower()]
        except KeyError:
            raise SchemaError(
                f"unknown table {name!r}; known tables: {sorted(self.tables)}"
            ) from None

    def table_names(self) -> List[str]:
        """Names of all tables in creation order."""
        return [table.name for table in self.tables.values()]

    # ------------------------------------------------------------------ #
    # statement execution
    # ------------------------------------------------------------------ #

    def execute(
        self, sql: str, params: Sequence[Any] = ()
    ) -> Union[ResultSet, int]:
        """Execute one SQL statement.

        Returns a :class:`ResultSet` for SELECT statements and the number of
        affected rows for every other statement.
        """
        statement = self._parse_cached(sql)
        if isinstance(statement, SelectStatement) and self.engine == "compiled":
            return self._execute_select(statement, params, sql)
        return self.execute_statement(statement, params)

    def executemany(self, sql: str, param_rows: Iterable[Sequence[Any]]) -> int:
        """Execute one parametrised statement over many parameter rows.

        The statement kind and engine are resolved once, outside the loop:

        * ``INSERT`` takes the bulk path — the statement is parsed and its
          value expressions compiled to a parameter binder exactly once
          (cached per statement and table epoch), every parameter row is
          bound, and the whole batch is appended through
          :meth:`~repro.relalg.storage.Table.insert_many` with deferred index
          maintenance.  The batch is atomic: a mid-batch error (bad value,
          duplicate primary key, missing parameter) inserts nothing.
        * ``SELECT`` re-executes the cached plan per parameter row (one plan
          miss per SQL text, hits afterwards).
        * Everything else loops over :meth:`execute_statement`.
        """
        statement = self._parse_cached(sql)
        if isinstance(statement, InsertStatement):
            return self._execute_insert_batch(statement, param_rows)
        if isinstance(statement, SelectStatement) and self.engine == "compiled":
            affected = 0
            for params in param_rows:
                affected += len(self._execute_select(statement, params, sql))
            return affected
        affected = 0
        for params in param_rows:
            result = self.execute_statement(statement, params)
            affected += result if isinstance(result, int) else len(result)
        return affected

    def query(self, sql: str, params: Sequence[Any] = ()) -> ResultSet:
        """Execute a statement that must be a SELECT."""
        result = self.execute(sql, params)
        if not isinstance(result, ResultSet):
            raise ExecutionError("query() requires a SELECT statement")
        return result

    def is_select(self, sql: str) -> bool:
        """Whether ``sql`` parses to a SELECT (uses the statement cache)."""
        return isinstance(self._parse_cached(sql), SelectStatement)

    # ------------------------------------------------------------------ #
    # transactions
    # ------------------------------------------------------------------ #

    @property
    def in_transaction(self) -> bool:
        """Whether an explicit transaction is currently open."""
        return self._txn is not None

    def begin(self) -> None:
        """Shortcut for ``execute("BEGIN")``."""
        self.execute("BEGIN")

    def commit(self) -> None:
        """Shortcut for ``execute("COMMIT")``."""
        self.execute("COMMIT")

    def rollback(self) -> None:
        """Shortcut for ``execute("ROLLBACK")``."""
        self.execute("ROLLBACK")

    def _require_autocommit(self, operation: str) -> None:
        if self._txn is not None:
            raise ExecutionError(
                f"{operation} is not allowed inside a transaction; "
                f"COMMIT or ROLLBACK first"
            )

    def _begin_txn(self) -> Transaction:
        if self._txn is not None:
            raise ExecutionError(
                "BEGIN inside an open transaction "
                "(nested transactions are not supported)"
            )
        self._txn_counter += 1
        txn = Transaction(self._txn_counter)
        self._txn = txn
        # DDL is refused mid-transaction, so the table set cannot change
        # while these references are out.
        for table in self.tables.values():
            table.txn = txn
        return txn

    def _commit_txn(self) -> None:
        txn = self._txn
        self._txn = None
        for table in self.tables.values():
            table.txn = None
        txn.commit()

    def _rollback_txn(self) -> None:
        txn = self._txn
        self._txn = None
        for table in self.tables.values():
            table.txn = None
        txn.rollback()

    def _execute_begin(self) -> int:
        txn = self._begin_txn()
        self._wal_log({"t": "begin", "x": txn.txn_id}, "begin")
        self.summary.record_other()
        return 0

    def _execute_commit(self) -> int:
        if self._txn is None:
            raise ExecutionError("COMMIT outside a transaction")
        # Log-then-finalise: the fsync of the commit marker is the durability
        # point.  If it fails (or a fault-injection hook "crashes" there) the
        # transaction stays open and in-memory state untouched, so the caller
        # can still ROLLBACK — and recovery discards the unmarked tail.
        self._wal_log({"t": "commit", "x": self._txn.txn_id}, "commit", sync=True)
        self._commit_txn()
        self.summary.record_other()
        self._maybe_autocheckpoint()
        return 0

    def _execute_rollback(self) -> int:
        if self._txn is None:
            raise ExecutionError("ROLLBACK outside a transaction")
        txn_id = self._txn.txn_id
        self._rollback_txn()
        # The abort record is bookkeeping, not durability: recovery discards
        # an uncommitted tail with or without it, so no fsync is needed.
        self._wal_log({"t": "abort", "x": txn_id}, "abort")
        self.summary.record_other()
        return 0

    # ------------------------------------------------------------------ #
    # write-ahead log
    # ------------------------------------------------------------------ #

    def _wal_log(self, record: Dict[str, Any], label: str, sync: bool = False) -> None:
        """Append one record (and optionally fsync) unless WAL-less/replaying."""
        if self._wal is None or self._wal_replaying:
            return
        self._wal.append(record, label)
        if sync:
            self._wal.sync(label)

    def checkpoint(self) -> None:
        """Serialise the catalog to the sidecar and truncate the log.

        The snapshot is written atomically under the next generation number
        before the log is reset, so a crash anywhere in between recovers to
        exactly the current committed state: a renamed-but-untruncated log is
        one generation stale and gets discarded (its effects are inside the
        checkpoint), an unrenamed snapshot is ignored and the log replays.
        """
        if self._wal is None:
            raise ExecutionError(
                "checkpoint() requires a write-ahead log (Database(wal_path=...))"
            )
        self._require_autocommit("checkpoint()")
        generation = self._wal_gen + 1
        self._wal.write_checkpoint(snapshot_state(self, generation))
        self._wal.reset(generation)
        self._wal_gen = generation

    def _maybe_autocheckpoint(self) -> None:
        if (
            self._wal is None
            or self._wal_replaying
            or self._wal_autocheckpoint is None
            or self._txn is not None
            or self._wal.size < self._wal_autocheckpoint
        ):
            return
        self.checkpoint()

    def _recover_wal(self) -> None:
        """Replay the log into the (empty) catalog and open it for appending.

        Committed transactions replay through the real transaction machinery
        (deferred compaction lands at the same points as in the original
        run), autocommit records replay directly, uncommitted tails and torn
        trailing lines are truncated away, and a log one generation behind
        its checkpoint — a crash window of :meth:`checkpoint` — is discarded
        wholesale.
        """
        wal = self._wal
        self._wal_replaying = True
        try:
            checkpoint = wal.load_checkpoint()
            if checkpoint is not None:
                self._wal_gen = int(checkpoint["gen"])
                restore_state(self, checkpoint)
            entries = list(wal.scan())
            if not entries or entries[0][0].get("t") != "log":
                # Missing, empty or torn-at-the-header log: nothing to
                # replay beyond the checkpoint; start a fresh generation.
                wal.reset(self._wal_gen)
                return
            log_gen = int(entries[0][0].get("gen", 0))
            if log_gen < self._wal_gen:
                # Crash between checkpoint rename and log truncate: the
                # log's contents are already inside the checkpoint.
                wal.reset(self._wal_gen)
                return
            if log_gen > self._wal_gen:
                raise RecoveryError(
                    f"write-ahead log {wal.path!r} is at generation {log_gen} "
                    f"but the checkpoint covers generation {self._wal_gen}; "
                    f"the checkpoint file is missing or stale"
                )
            last_good = entries[0][1]
            open_txn: Optional[int] = None
            buffered: List[Dict[str, Any]] = []
            for record, end_offset in entries[1:]:
                kind = record.get("t")
                if kind == "begin":
                    if open_txn is not None:
                        break
                    open_txn = int(record["x"])
                    buffered = []
                elif kind in ("ins", "del"):
                    xid = int(record["x"])
                    if xid == 0:
                        if open_txn is not None:
                            break
                        self._replay_dml(record)
                        last_good = end_offset
                    elif xid == open_txn:
                        buffered.append(record)
                    else:
                        break
                elif kind == "commit":
                    if open_txn != int(record["x"]):
                        break
                    self._replay_txn(buffered)
                    open_txn, buffered = None, []
                    last_good = end_offset
                elif kind == "abort":
                    if open_txn != int(record["x"]):
                        break
                    open_txn, buffered = None, []
                    last_good = end_offset
                elif kind == "create_table":
                    if open_txn is not None:
                        break
                    self._replay_create_table(record)
                    last_good = end_offset
                elif kind == "create_index":
                    if open_txn is not None:
                        break
                    self.table(record["table"]).create_index(
                        record["name"], record["column"],
                        ordered=record.get("ordered", False),
                    )
                    self._bump_table_epoch(record["table"].lower())
                    last_good = end_offset
                elif kind == "drop_table":
                    if open_txn is not None:
                        break
                    self.drop_table(record["table"], if_exists=True)
                    last_good = end_offset
                else:
                    # Unknown record kind: treat like a torn tail rather
                    # than guessing at its semantics.
                    break
            wal.truncate(last_good)
            wal.open_for_append()
        finally:
            self._wal_replaying = False

    def _replay_create_table(self, record: Dict[str, Any]) -> None:
        schema = TableSchema(
            name=record["table"],
            columns=[
                Column(
                    name=name,
                    type=ColumnType(type_name),
                    nullable=nullable,
                    primary_key=primary_key,
                )
                for name, type_name, nullable, primary_key in record["columns"]
            ],
        )
        self.create_table(schema, n_partitions=record["n_partitions"])

    def _replay_dml(self, record: Dict[str, Any]) -> None:
        table = self.table(record["tb"])
        rows = [decode_row(row) for row in record["rows"]]
        if record["t"] == "ins":
            table.insert_many(rows)
            return
        # Replay a DELETE by its logged row images: by induction the
        # replayed table holds bit-identical rows to the original run, so
        # consuming the image multiset in scan order tombstones exactly the
        # positions the original delete did.
        budget: Dict[Any, int] = {}
        for row in rows:
            key = row_key(row)
            budget[key] = budget.get(key, 0) + 1

        def predicate(row: Tuple[Any, ...]) -> bool:
            key = row_key(row)
            remaining = budget.get(key, 0)
            if remaining:
                budget[key] = remaining - 1
                return True
            return False

        table.delete_where(predicate)

    def _replay_txn(self, records: List[Dict[str, Any]]) -> None:
        self._begin_txn()
        try:
            for record in records:
                self._replay_dml(record)
        except Exception:
            self._rollback_txn()
            raise
        self._commit_txn()

    def execute_statement(
        self, statement: Statement, params: Sequence[Any] = ()
    ) -> Union[ResultSet, int]:
        """Execute an already parsed statement (no plan cache: no SQL key)."""
        if isinstance(statement, SelectStatement):
            return self._execute_select(statement, params, sql=None)
        if isinstance(statement, BeginStatement):
            return self._execute_begin()
        if isinstance(statement, CommitStatement):
            return self._execute_commit()
        if isinstance(statement, RollbackStatement):
            return self._execute_rollback()
        if isinstance(statement, CreateTableStatement):
            return self._execute_create_table(statement)
        if isinstance(statement, CreateIndexStatement):
            self._require_autocommit("CREATE INDEX")
            self.table(statement.table).create_index(
                statement.name, statement.column, ordered=statement.ordered
            )
            self._bump_table_epoch(statement.table.lower())
            self._wal_log(
                {
                    "t": "create_index",
                    "name": statement.name,
                    "table": statement.table,
                    "column": statement.column,
                    "ordered": statement.ordered,
                },
                "ddl",
                sync=True,
            )
            self.summary.record_other()
            return 0
        if isinstance(statement, DropTableStatement):
            self.drop_table(statement.table, if_exists=statement.if_exists)
            self.summary.record_other()
            return 0
        if isinstance(statement, InsertStatement):
            return self._execute_insert(statement, params)
        if isinstance(statement, DeleteStatement):
            return self._execute_delete(statement, params)
        raise ExecutionError(f"unsupported statement {type(statement).__name__}")

    # ------------------------------------------------------------------ #
    # plan cache
    # ------------------------------------------------------------------ #

    def plan_cache_info(self) -> Dict[str, int]:
        """Hit/miss/size counters of the statement-level plan cache."""
        return {
            "hits": self._plan_hits,
            "misses": self._plan_misses,
            "size": len(self._plan_cache),
        }

    def _snapshot_deps(self, deps: Set[str]) -> _DepSnapshot:
        return tuple(
            sorted((name, self._table_epochs.get(name, 0)) for name in deps)
        )

    def _deps_valid(self, snapshot: _DepSnapshot) -> bool:
        epochs = self._table_epochs
        return all(epochs.get(name, 0) == epoch for name, epoch in snapshot)

    def _plan_for(self, statement: SelectStatement, sql: Optional[str]) -> QueryPlan:
        if sql is not None:
            entry = self._plan_cache.get(sql)
            if entry is not None and self._deps_valid(entry[0]):
                self._plan_hits += 1
                return entry[1]
        self._plan_misses += 1
        plan = plan_select(statement, self.tables)
        if sql is not None:
            self._plan_cache[sql] = (self._snapshot_deps(plan.table_deps), plan)
        return plan

    def _bump_table_epoch(self, key: str) -> None:
        """Record DDL on one table: only dependent cached entries are evicted.

        DDL on table A leaves hot plans over table B untouched (the
        whole-cache-flush this replaces evicted everything); the entries
        that *do* depend on the DDL'd table are pruned eagerly here, so a
        long-lived database under schema churn does not accumulate dead
        plans, binders and their pinned statements.
        """
        self._schema_epoch += 1
        self._table_epochs[key] = self._table_epochs.get(key, 0) + 1
        self._plan_cache = {
            sql: entry
            for sql, entry in self._plan_cache.items()
            if self._deps_valid(entry[0])
        }
        for cache in (self._delete_predicate_cache, self._insert_binder_cache):
            for cache_key in [
                k for k, entry in cache.items()
                if not self._deps_valid(entry[0])
            ]:
                del cache[cache_key]

    # ------------------------------------------------------------------ #
    # EXPLAIN
    # ------------------------------------------------------------------ #

    def explain(
        self, sql: str, analyze: bool = False, params: Sequence[Any] = ()
    ) -> str:
        """A human-readable execution plan of one SELECT statement.

        Reports the join order, the access path chosen per binding (with the
        probe column), partition layout and pruning, residual filter counts
        and the plan-time cardinality estimates — for the outer plan and,
        nested, for every scalar subquery.  A trailing ``analysis:`` section
        lists the plan-time semantic findings: conjuncts rewritten by
        constant folding (``folded: ...``), always-true conjuncts dropped,
        always-false/contradictory predicates that let the plan skip the
        scan entirely, and lint warnings (cross joins without a connecting
        predicate, non-sargable predicates on indexed columns, mixed-type
        equality comparisons); ``no findings`` when the analyzer has
        nothing to report.  Uses (and warms) the plan cache
        exactly like :meth:`execute`; subquery plans come from the cached
        plan's own plan-time snapshot, so the output describes the plans
        that actually execute, not a re-derivation under newer statistics.

        ``analyze:`` — with ``analyze=True`` the statement is **executed
        once** (sequentially, row-at-a-time, with ``params`` bound) through
        an instrumented copy of the cached plan, and a trailing section
        reports the estimated vs. actual cumulative cardinality per join
        level plus the run's physical counters — the honest-estimates
        check: a level whose ``actual_rows`` diverges wildly from
        ``est_cardinality`` marks a mis-costed predicate.  The run performs
        the statement's real reads (counters land in the execution summary
        like any other execution) but discards the result rows.

        Raises a typed :class:`ExecutionError` (never a bare ``TypeError``)
        for non-string input and non-SELECT statements, and on the
        interpreted engine — whose AST walker does not run the planned
        access paths, so describing (and caching) a compiled plan would
        silently report an execution that never happens.
        """
        if not isinstance(sql, str):
            raise ExecutionError(
                f"explain() requires SQL text, got {type(sql).__name__}"
            )
        if self.engine != "compiled":
            raise ExecutionError(
                "explain() requires the compiled engine; the interpreted "
                "AST walker does not execute planned access paths"
            )
        statement = self._parse_cached(sql)
        if not isinstance(statement, SelectStatement):
            raise ExecutionError("explain() requires a SELECT statement")
        plan = self._plan_for(statement, sql)
        lines = self._explain_lines(plan, indent="")
        self._explain_subplans(plan, "", lines)
        if analyze:
            lines.extend(self._explain_analyze(plan, params))
        return "\n".join(lines)

    def _explain_analyze(
        self, plan: QueryPlan, params: Sequence[Any]
    ) -> List[str]:
        """Run ``plan`` once with per-level row counters; render the section.

        Each level gets an always-true counting filter appended *after* its
        real filters, so it counts exactly the rows that survive the level —
        the actual counterpart of ``est_cardinality``.  The instrumented
        copy executes sequentially and row-at-a-time (the vectorized scan
        bypasses row filters), which cannot change the result: every engine
        mode returns byte-identical rows.
        """
        actuals = [0] * len(plan.levels)
        instrumented: List[_Level] = []
        for position, level in enumerate(plan.levels):
            def count(row, ctx, _position=position):  # noqa: B023
                actuals[_position] += 1
                return True

            instrumented.append(
                _Level(
                    binding=level.binding,
                    table=level.table,
                    offset=level.offset,
                    end=level.end,
                    access=level.access,
                    filters=level.filters + [count],
                    estimate=level.estimate,
                    filter_exprs=list(level.filter_exprs),
                    key_ast=level.key_ast,
                )
            )
        probe = _dataclass_replace(plan, levels=instrumented)
        stats = QueryStats()
        result = probe.execute(params, stats=stats)
        self.summary.record_select(stats)
        lines = ["analyze:"]
        cumulative = 1.0
        for position, level in enumerate(plan.levels):
            cumulative *= max(level.estimate, 0.0)
            lines.append(
                f"  {position + 1}. {level.binding} ({level.table.name}): "
                f"est_cardinality={round(cumulative, 3)}, "
                f"actual_rows={actuals[position]}"
            )
        lines.append(
            f"  returned {len(result.rows)} row(s); "
            f"scanned {stats.rows_scanned}; "
            f"index lookups {stats.index_lookups}; "
            f"range probes {stats.range_probes}"
        )
        return lines

    def _explain_subplans(
        self, plan: QueryPlan, indent: str, lines: List[str]
    ) -> None:
        for position, subplan in enumerate(plan.subquery_plans, start=1):
            lines.append(f"{indent}  subquery {position}:")
            lines.extend(self._explain_lines(subplan, indent + "  "))
            self._explain_subplans(subplan, indent + "  ", lines)

    def _explain_lines(self, plan: QueryPlan, indent: str) -> List[str]:
        described = plan.describe()
        order = " -> ".join(level["binding"] for level in described)
        lines = [f"{indent}join order: {order}"]
        for position, level in enumerate(described, start=1):
            access = level["access"]
            if level["column"] is not None:
                access += f" on {level['column']}"
            if level["pruned"]:
                partitions = f"1 of {level['partitions']} partition(s) [pruned]"
            else:
                partitions = f"{level['partitions']} partition(s)"
            lines.append(
                f"{indent}  {position}. {level['binding']} ({level['table']}): "
                f"{access}, {partitions}, filters={level['filters']}, "
                f"est_rows={level['estimated_rows']}, "
                f"est_cardinality={level['estimated_cardinality']}"
            )
        if not plan.follows_syntactic_order:
            lines.append(
                f"{indent}  (join order was re-ordered by estimated cardinality)"
            )
        if plan.vector_report:
            suffix = "" if self.vectorized else " (disabled: vectorized=False)"
            lines.append(f"{indent}vectorization{suffix}:")
            for rung in ("scan", "join-probe", "aggregate", "projection",
                         "top-k"):
                status = plan.vector_report.get(rung)
                if status is not None:
                    lines.append(f"{indent}  {rung}: {status}")
            if plan.partial_aggregate_spec is not None:
                lines.append(
                    f"{indent}  partial-aggregation: mergeable "
                    f"(process workers fold shard-local group state)"
                )
        lines.append(f"{indent}analysis:")
        if plan.analysis_report:
            for finding in plan.analysis_report:
                lines.append(f"{indent}  {finding}")
        else:
            lines.append(f"{indent}  no findings")
        return lines

    # ------------------------------------------------------------------ #
    # parallel execution pools
    # ------------------------------------------------------------------ #

    def _execution_pool(self):
        """The lazily created thread fan-out pool (None when sequential)."""
        if self.parallel is None or self.executor != "thread":
            return None
        if self._pool is None:
            from concurrent.futures import ThreadPoolExecutor

            self._pool = ThreadPoolExecutor(
                max_workers=self.parallel,
                thread_name_prefix=f"relalg-{self.name}",
            )
        return self._pool

    def _process_pool(self) -> Optional["ProcessScanExecutor"]:
        """The process executor (lazily created when owned; None after a
        borrowed executor was released by :meth:`close`)."""
        if self._process_executor is None and self._owns_executor:
            self._process_executor = ProcessScanExecutor(workers=self.parallel)
        return self._process_executor

    def close(self) -> None:
        """Release the partition fan-out pools (idempotent).

        An owned process executor is shut down; a shared one merely forgets
        this database's shard replicas and keeps serving its other owners.
        Closing is safe to repeat and safe on databases that never fanned
        out; the context-manager protocol (``with Database(...) as db:``)
        calls it on exit so pools cannot leak.

        An open transaction is **rolled back** (with a
        :class:`TransactionWarning`), never silently committed: the in-memory
        state returns to the last commit point, and because the WAL tail past
        the last commit marker carries no durability, the on-disk log stays
        recoverable either way.
        """
        if self._txn is not None:
            warnings.warn(
                f"database {self.name!r} closed with an open transaction; "
                f"rolling back",
                TransactionWarning,
                stacklevel=2,
            )
            txn_id = self._txn.txn_id
            self._rollback_txn()
            self._wal_log({"t": "abort", "x": txn_id}, "abort")
        if self._wal is not None:
            wal, self._wal = self._wal, None
            wal.close()
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._process_executor is not None:
            executor, self._process_executor = self._process_executor, None
            if self._owns_executor:
                executor.shutdown()
            else:
                executor.forget(
                    [table.uid for table in self.tables.values()]
                )

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # ------------------------------------------------------------------ #
    # statement handlers
    # ------------------------------------------------------------------ #

    def _vectorized_now(self) -> bool:
        """Whether this statement may drive scans vectorized *right now*.

        Columnar chunks are built from the live row lists, which include
        rows a transaction has merely staged; snapshot-correct chunk reads
        under staged DML would need per-statement rebuilds, so the engine
        simply falls back to row-at-a-time until the transaction resolves —
        the same conservative seam the process executor uses.
        """
        return self.vectorized and (
            self._txn is None or not self._txn.staged
        )

    def _execute_select(
        self,
        statement: SelectStatement,
        params: Sequence[Any],
        sql: Optional[str],
    ) -> ResultSet:
        if self.engine == "interpreted":
            executor = InterpretedSelectExecutor(self.tables, params)
            result = executor.execute(statement)
        elif self.executor == "process":
            plan = self._plan_for(statement, sql)
            process_executor = self._process_pool()
            if self._txn is not None and self._txn.staged:
                # Worker shards hold only committed partition versions, so a
                # fan-out would hide this session's staged writes; scan
                # sequentially until the transaction resolves.
                process_executor = None
            result = plan.execute(
                params,
                QueryStats(),
                process_executor=process_executor,
                vectorized=self._vectorized_now(),
                chunk_size=self.vectorized_chunk_size,
            )
        else:
            plan = self._plan_for(statement, sql)
            result = plan.execute(
                params,
                QueryStats(),
                pool=self._execution_pool(),
                vectorized=self._vectorized_now(),
                chunk_size=self.vectorized_chunk_size,
            )
        self.summary.record_select(result.stats)
        return result

    def _execute_create_table(self, statement: CreateTableStatement) -> int:
        key = statement.table.lower()
        if key in self.tables:
            if statement.if_not_exists:
                self.summary.record_other()
                return 0
            raise SchemaError(f"table {statement.table!r} already exists")
        columns = [
            Column(
                name=c.name,
                type=ColumnType.from_sql(c.type_name),
                nullable=c.nullable,
                primary_key=c.primary_key,
            )
            for c in statement.columns
        ]
        self.create_table(TableSchema(name=statement.table, columns=columns))
        self.summary.record_other()
        return 0

    def _execute_insert(
        self, statement: InsertStatement, params: Sequence[Any]
    ) -> int:
        return self._execute_insert_batch(statement, [params])

    def _insert_binder_for(self, statement: InsertStatement):
        entry = self._insert_binder_cache.get(id(statement))
        if entry is not None and self._deps_valid(entry[0]):
            return entry[2]
        binder = compile_insert_binder(statement, self.table(statement.table))
        self._insert_binder_cache[id(statement)] = (
            self._snapshot_deps({statement.table.lower()}), statement, binder
        )
        return binder

    def _execute_insert_batch(
        self, statement: InsertStatement, param_rows: Iterable[Sequence[Any]]
    ) -> int:
        """Bind every parameter row and insert the whole batch atomically."""
        table = self.table(statement.table)
        binder = self._insert_binder_for(statement)
        rows: List[List[Any]] = []
        for params in param_rows:
            rows.extend(binder(params))
        if not rows:
            return 0
        inserted = table.insert_many(rows)
        if self._wal is not None and not self._wal_replaying:
            xid = self._txn.txn_id if self._txn is not None else 0
            self._wal_log(
                {
                    "t": "ins",
                    "x": xid,
                    "tb": table.name,
                    "rows": [encode_row(row) for row in rows],
                },
                "ins" if xid else "auto-ins",
                sync=xid == 0,
            )
            if self._txn is None:
                self._maybe_autocheckpoint()
        self.summary.record_insert(inserted)
        return inserted

    def _execute_delete(
        self, statement: DeleteStatement, params: Sequence[Any]
    ) -> int:
        table = self.table(statement.table)
        # Statements whose WHERE clause would deterministically raise on
        # every row (e.g. an ordered comparison between a VARCHAR column and
        # a number) are rejected before any row is touched, on every engine.
        check_delete(statement, self.tables)
        # Collect deleted row images while a WAL is attached: the images are
        # the log record (replay re-deletes exactly these rows).
        collect: Optional[List[Tuple[Any, ...]]] = (
            [] if self._wal is not None and not self._wal_replaying else None
        )
        if statement.where is None:
            deleted = table.delete_where(lambda row: True, collect=collect)
        else:
            # Compile the predicate once per statement over a single-binding
            # slot layout (the table's row tuples are the slot rows directly)
            # and cache it, so executemany re-executions only re-bind params.
            entry = self._delete_predicate_cache.get(id(statement))
            if entry is not None and self._deps_valid(entry[0]):
                predicate_fn = entry[2]
            else:
                layout = SlotLayout([(table.name.lower(), table)])
                predicate_fn = compile_row_expr(
                    statement.where, layout, self.tables
                )
                deps = {table.name.lower()} | expr_table_deps(statement.where)
                self._delete_predicate_cache[id(statement)] = (
                    self._snapshot_deps(deps), statement, predicate_fn
                )
            ctx = ExecContext(self.tables, list(params), QueryStats())

            def predicate(row: Tuple[Any, ...]) -> bool:
                value = predicate_fn(row, ctx)
                return bool(value) and value is not None

            deleted = table.delete_where(predicate, collect=collect)
        if collect:
            xid = self._txn.txn_id if self._txn is not None else 0
            self._wal_log(
                {
                    "t": "del",
                    "x": xid,
                    "tb": table.name,
                    "rows": [encode_row(row) for row in collect],
                },
                "del" if xid else "auto-del",
                sync=xid == 0,
            )
            if self._txn is None:
                self._maybe_autocheckpoint()
        self.summary.record_other()
        return deleted

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #

    def _parse_cached(self, sql: str) -> Statement:
        statement = self._statement_cache.get(sql)
        if statement is None:
            statement = parse_sql(sql)
            # Only cache read-only/immutable statement kinds; SELECTs are
            # mutable dataclasses but are never modified by the executor.
            self._statement_cache[sql] = statement
        return statement

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    def row_counts(self) -> Dict[str, int]:
        """Live row count per table."""
        return {table.name: table.row_count for table in self.tables.values()}

    def total_rows(self) -> int:
        """Total number of live rows across all tables."""
        return sum(table.row_count for table in self.tables.values())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Database({self.name!r}, tables={len(self.tables)})"
