"""The database facade: statement execution over an in-memory catalog.

:class:`Database` is the entry point of the relational substrate.  It keeps the
table catalog, parses and executes SQL statements (optionally with positional
``?`` parameters) and accumulates execution statistics.  The interface mirrors
the small subset of the Python DB-API that COSY needs (``execute``,
``executemany``, result sets), so the analyzer code reads like ordinary
database client code even though everything runs in process.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.relalg.errors import ExecutionError, SchemaError
from repro.relalg.executor import QueryStats, ResultSet, SelectExecutor
from repro.relalg.schema import Column, ColumnType, TableSchema
from repro.relalg.sqlast import (
    CreateIndexStatement,
    CreateTableStatement,
    DeleteStatement,
    DropTableStatement,
    InsertStatement,
    Literal,
    Placeholder,
    SelectStatement,
    SqlExpr,
    Statement,
    UnaryOperation,
)
from repro.relalg.sqlparser import parse_sql
from repro.relalg.storage import Table

__all__ = ["Database", "ExecutionSummary"]


@dataclass
class ExecutionSummary:
    """Cumulative statistics of every statement a database has executed."""

    statements: int = 0
    selects: int = 0
    inserts: int = 0
    rows_inserted: int = 0
    rows_returned: int = 0
    rows_scanned: int = 0
    index_lookups: int = 0

    def record_select(self, stats: QueryStats) -> None:
        self.statements += 1
        self.selects += 1
        self.rows_returned += stats.rows_returned
        self.rows_scanned += stats.rows_scanned
        self.index_lookups += stats.index_lookups

    def record_insert(self, rows: int) -> None:
        self.statements += 1
        self.inserts += 1
        self.rows_inserted += rows

    def record_other(self) -> None:
        self.statements += 1


class Database:
    """An in-memory relational database with a SQL interface."""

    def __init__(self, name: str = "cosy") -> None:
        self.name = name
        self.tables: Dict[str, Table] = {}
        self.summary = ExecutionSummary()
        self._statement_cache: Dict[str, Statement] = {}

    # ------------------------------------------------------------------ #
    # schema management (programmatic)
    # ------------------------------------------------------------------ #

    def create_table(self, schema: TableSchema) -> Table:
        """Create a table from a programmatic schema definition."""
        key = schema.name.lower()
        if key in self.tables:
            raise SchemaError(f"table {schema.name!r} already exists")
        table = Table(schema)
        self.tables[key] = table
        return table

    def drop_table(self, name: str, if_exists: bool = False) -> None:
        """Remove a table (and its data and indexes)."""
        key = name.lower()
        if key not in self.tables:
            if if_exists:
                return
            raise SchemaError(f"unknown table {name!r}")
        del self.tables[key]

    def table(self, name: str) -> Table:
        """Look up a table by name (case-insensitive)."""
        try:
            return self.tables[name.lower()]
        except KeyError:
            raise SchemaError(
                f"unknown table {name!r}; known tables: {sorted(self.tables)}"
            ) from None

    def table_names(self) -> List[str]:
        """Names of all tables in creation order."""
        return [table.name for table in self.tables.values()]

    # ------------------------------------------------------------------ #
    # statement execution
    # ------------------------------------------------------------------ #

    def execute(
        self, sql: str, params: Sequence[Any] = ()
    ) -> Union[ResultSet, int]:
        """Execute one SQL statement.

        Returns a :class:`ResultSet` for SELECT statements and the number of
        affected rows for every other statement.
        """
        statement = self._parse_cached(sql)
        return self.execute_statement(statement, params)

    def executemany(self, sql: str, param_rows: Iterable[Sequence[Any]]) -> int:
        """Execute one parametrised statement for every parameter row."""
        statement = self._parse_cached(sql)
        affected = 0
        for params in param_rows:
            result = self.execute_statement(statement, params)
            affected += result if isinstance(result, int) else len(result)
        return affected

    def query(self, sql: str, params: Sequence[Any] = ()) -> ResultSet:
        """Execute a statement that must be a SELECT."""
        result = self.execute(sql, params)
        if not isinstance(result, ResultSet):
            raise ExecutionError("query() requires a SELECT statement")
        return result

    def execute_statement(
        self, statement: Statement, params: Sequence[Any] = ()
    ) -> Union[ResultSet, int]:
        """Execute an already parsed statement."""
        if isinstance(statement, SelectStatement):
            executor = SelectExecutor(self.tables, params)
            result = executor.execute(statement)
            self.summary.record_select(result.stats)
            return result
        if isinstance(statement, CreateTableStatement):
            return self._execute_create_table(statement)
        if isinstance(statement, CreateIndexStatement):
            self.table(statement.table).create_index(statement.name, statement.column)
            self.summary.record_other()
            return 0
        if isinstance(statement, DropTableStatement):
            self.drop_table(statement.table, if_exists=statement.if_exists)
            self.summary.record_other()
            return 0
        if isinstance(statement, InsertStatement):
            return self._execute_insert(statement, params)
        if isinstance(statement, DeleteStatement):
            return self._execute_delete(statement, params)
        raise ExecutionError(f"unsupported statement {type(statement).__name__}")

    # ------------------------------------------------------------------ #
    # statement handlers
    # ------------------------------------------------------------------ #

    def _execute_create_table(self, statement: CreateTableStatement) -> int:
        key = statement.table.lower()
        if key in self.tables:
            if statement.if_not_exists:
                self.summary.record_other()
                return 0
            raise SchemaError(f"table {statement.table!r} already exists")
        columns = [
            Column(
                name=c.name,
                type=ColumnType.from_sql(c.type_name),
                nullable=c.nullable,
                primary_key=c.primary_key,
            )
            for c in statement.columns
        ]
        self.create_table(TableSchema(name=statement.table, columns=columns))
        self.summary.record_other()
        return 0

    def _execute_insert(
        self, statement: InsertStatement, params: Sequence[Any]
    ) -> int:
        table = self.table(statement.table)
        inserted = 0
        for row_exprs in statement.rows:
            values = [self._constant_value(e, params) for e in row_exprs]
            if statement.columns:
                if len(values) != len(statement.columns):
                    raise ExecutionError(
                        f"INSERT specifies {len(statement.columns)} column(s) "
                        f"but {len(values)} value(s)"
                    )
                table.insert_mapping(dict(zip(statement.columns, values)))
            else:
                table.insert(values)
            inserted += 1
        self.summary.record_insert(inserted)
        return inserted

    def _execute_delete(
        self, statement: DeleteStatement, params: Sequence[Any]
    ) -> int:
        table = self.table(statement.table)
        if statement.where is None:
            deleted = table.delete_where(lambda row: True)
        else:
            executor = SelectExecutor(self.tables, params)
            binding = table.name.lower()

            def predicate(row: Tuple[Any, ...]) -> bool:
                env = {
                    binding: {
                        column.name.lower(): value
                        for column, value in zip(table.schema.columns, row)
                    }
                }
                value = executor._eval(statement.where, env)
                return bool(value) and value is not None

            deleted = table.delete_where(predicate)
        self.summary.record_other()
        return deleted

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #

    def _parse_cached(self, sql: str) -> Statement:
        statement = self._statement_cache.get(sql)
        if statement is None:
            statement = parse_sql(sql)
            # Only cache read-only/immutable statement kinds; SELECTs are
            # mutable dataclasses but are never modified by the executor.
            self._statement_cache[sql] = statement
        return statement

    def _constant_value(self, expr: SqlExpr, params: Sequence[Any]) -> Any:
        """Evaluate an INSERT value expression (literals, parameters, negation)."""
        if isinstance(expr, Literal):
            return expr.value
        if isinstance(expr, Placeholder):
            if expr.index >= len(params):
                raise ExecutionError(
                    f"INSERT uses parameter {expr.index + 1} but only "
                    f"{len(params)} parameter(s) were supplied"
                )
            return params[expr.index]
        if isinstance(expr, UnaryOperation) and expr.op == "-":
            value = self._constant_value(expr.operand, params)
            return None if value is None else -value
        raise ExecutionError(
            "INSERT values must be literals or '?' parameters"
        )

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    def row_counts(self) -> Dict[str, int]:
        """Live row count per table."""
        return {table.name: table.row_count for table in self.tables.values()}

    def total_rows(self) -> int:
        """Total number of live rows across all tables."""
        return sum(table.row_count for table in self.tables.values())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Database({self.name!r}, tables={len(self.tables)})"
