"""Expression compilation: SQL expressions → Python closures over slot rows.

The interpreted executor (:mod:`repro.relalg.interp`) re-walks the expression
AST for every row it inspects and resolves every column reference through a
per-row dict-of-dicts environment.  This module removes both per-row costs:

* a :class:`SlotLayout` assigns every column of every table binding a fixed
  *slot* (a tuple position) at plan time, so a joined row is one flat tuple
  and a column reference compiles into a single indexed load;
* :func:`compile_row_expr` turns an expression into a Python closure
  ``fn(row, ctx) -> value`` — all dispatch on node types happens once, at
  compile time;
* :func:`compile_group_expr` does the same for expressions evaluated per
  *group* of rows (aggregate queries), mirroring the reference semantics of
  the interpreted engine exactly (NULL propagation, DISTINCT, empty groups).

``ctx`` is an :class:`ExecContext` carrying the positional parameters, the
:class:`~repro.relalg.rowset.QueryStats` counters and the table catalog (the
latter is needed by scalar subqueries, which are planned at compile time and
executed with fresh counters that are merged back).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.relalg.errors import ExecutionError
from repro.relalg.rowset import QueryStats, _hashable, _is_true
from repro.relalg.sqlast import (
    BinaryOperation,
    BinaryOperator,
    ColumnRef,
    FunctionExpr,
    InList,
    InsertStatement,
    IsNull,
    Literal,
    Placeholder,
    ScalarSubquery,
    SqlExpr,
    Star,
    UnaryOperation,
    format_expr,
)
from repro.relalg.storage import Table

__all__ = [
    "BatchPredicate",
    "ExecContext",
    "SlotLayout",
    "RowFn",
    "GroupFn",
    "compile_batch_aggregate",
    "compile_batch_expr",
    "compile_batch_predicate",
    "compile_batch_projection",
    "compile_row_expr",
    "compile_group_expr",
    "compile_insert_binder",
]

#: A compiled per-row expression: ``fn(row, ctx) -> value``.
RowFn = Callable[[Sequence[Any], "ExecContext"], Any]
#: A compiled per-group expression: ``fn(group_rows, ctx) -> value``.
GroupFn = Callable[[List[Tuple[Any, ...]], "ExecContext"], Any]


class ExecContext:
    """Per-execution state threaded through every compiled closure."""

    __slots__ = ("tables", "params", "stats", "hash_tables")

    def __init__(
        self,
        tables: Dict[str, Table],
        params: Sequence[Any],
        stats: QueryStats,
    ) -> None:
        self.tables = tables
        self.params = params
        self.stats = stats
        #: Lazily built hash-join tables, keyed by plan level index.
        self.hash_tables: Dict[int, Dict[Any, List[Tuple[Any, ...]]]] = {}


class SlotLayout:
    """Slot (flat tuple position) assignment for a list of table bindings.

    Slots follow the *syntactic* binding order of the statement, regardless of
    the join order the planner picks, so projections and ``SELECT *`` output
    are stable under join reordering.
    """

    __slots__ = ("bindings", "offsets", "columns", "width")

    def __init__(self, bindings: List[Tuple[str, Table]]) -> None:
        self.bindings = bindings
        self._assign(
            (binding, [c.name for c in table.schema.columns])
            for binding, table in bindings
        )

    def _assign(
        self, named_bindings: Iterable[Tuple[str, Sequence[str]]]
    ) -> None:
        """The single slot-assignment rule (binding order, lowered names,
        cumulative offsets) shared by both construction paths — the process
        executor depends on parent and worker deriving identical slots."""
        self.offsets = {}
        self.columns = {}
        offset = 0
        for binding, names in named_bindings:
            self.offsets[binding] = offset
            lowered = [name.lower() for name in names]
            self.columns[binding] = lowered
            offset += len(lowered)
        self.width = offset

    @classmethod
    def from_column_names(
        cls, bindings: Sequence[Tuple[str, Sequence[str]]]
    ) -> "SlotLayout":
        """Rebuild a layout from ``(binding, column names)`` pairs.

        This is the worker-side rehydration path of the process-pool
        executor: a :class:`~repro.relalg.planner.PlanSpec` ships the layout
        as plain data (compiled closures and :class:`Table` objects do not
        pickle), and the worker re-derives an identical slot assignment via
        the same :meth:`_assign` rule the parent's layout used.
        """
        layout = cls.__new__(cls)
        layout.bindings = list(bindings)
        layout._assign(layout.bindings)
        return layout

    def range_of(self, binding: str) -> Tuple[int, int]:
        """``(offset, offset + n_columns)`` of one binding."""
        offset = self.offsets[binding]
        return offset, offset + len(self.columns[binding])

    def resolve(self, ref: ColumnRef) -> int:
        """The slot of a (possibly qualified) column reference.

        Raises :class:`ExecutionError` for unknown and ambiguous references —
        at plan time rather than per row, with the interpreter's messages.
        """
        name = ref.name.lower()
        if ref.table is not None:
            binding = ref.table.lower()
            columns = self.columns.get(binding)
            if columns is None or name not in columns:
                raise ExecutionError(f"unknown column {ref}")
            return self.offsets[binding] + columns.index(name)
        matches = [
            binding for binding, columns in self.columns.items() if name in columns
        ]
        if not matches:
            raise ExecutionError(f"unknown column {ref}")
        if len(matches) > 1:
            raise ExecutionError(f"ambiguous column reference {ref.name!r}")
        binding = matches[0]
        return self.offsets[binding] + self.columns[binding].index(name)


# --------------------------------------------------------------------------- #
# shared operator semantics
# --------------------------------------------------------------------------- #


def _source_suffix(source: Optional[SqlExpr]) -> str:
    """`` in <expr>`` attribution, rendered lazily (errors only)."""
    return f" in {format_expr(source)}" if source is not None else ""


def _apply_binop(
    op: BinaryOperator, left: Any, right: Any, source: Optional[SqlExpr] = None
) -> Any:
    """Non-logical binary operators with the engine's NULL semantics.

    ``source`` is the originating AST node; it is only formatted when an
    error is raised, so attribution costs nothing on the hot path.  Callers
    that re-evaluate cloned nodes (the group-level aggregate paths) pass no
    source, keeping their historical messages.
    """
    if left is None or right is None:
        # Simplified NULL semantics: any comparison or arithmetic with NULL
        # yields NULL (which is falsy in predicates).
        return None
    try:
        if op is BinaryOperator.ADD:
            return left + right
        if op is BinaryOperator.SUB:
            return left - right
        if op is BinaryOperator.MUL:
            return left * right
        if op is BinaryOperator.DIV:
            if right == 0:
                raise ExecutionError(
                    f"division by zero{_source_suffix(source)}"
                )
            return left / right
    except TypeError:
        raise ExecutionError(
            f"invalid operands for {op.value}: {left!r} and {right!r}"
            f"{_source_suffix(source)}"
        ) from None
    try:
        if op is BinaryOperator.EQ:
            return left == right
        if op is BinaryOperator.NE:
            return left != right
        if op is BinaryOperator.LT:
            return left < right
        if op is BinaryOperator.LE:
            return left <= right
        if op is BinaryOperator.GT:
            return left > right
        if op is BinaryOperator.GE:
            return left >= right
    except TypeError as exc:
        raise ExecutionError(
            f"cannot compare {left!r} and {right!r}: {exc}"
            f"{_source_suffix(source)}"
        ) from None
    raise ExecutionError(f"unhandled operator {op}")


_SCALAR_FUNCTIONS: Dict[str, Callable[..., Any]] = {
    "ABS": lambda a: None if a is None else abs(a),
    "LENGTH": lambda a: None if a is None else len(a),
    "LOWER": lambda a: None if a is None else str(a).lower(),
    "UPPER": lambda a: None if a is None else str(a).upper(),
}


# --------------------------------------------------------------------------- #
# per-row compilation
# --------------------------------------------------------------------------- #


def compile_row_expr(
    expr: SqlExpr, layout: SlotLayout, tables: Dict[str, Table]
) -> RowFn:
    """Compile ``expr`` into a closure evaluated against one slot row."""
    if isinstance(expr, Literal):
        value = expr.value
        return lambda row, ctx: value
    if isinstance(expr, Placeholder):
        index = expr.index
        needed = index + 1

        def param_fn(row: Sequence[Any], ctx: ExecContext) -> Any:
            params = ctx.params
            if index >= len(params):
                raise ExecutionError(
                    f"statement uses {needed} parameter(s) but only "
                    f"{len(params)} were supplied"
                )
            return params[index]

        return param_fn
    if isinstance(expr, ColumnRef):
        slot = layout.resolve(expr)
        return lambda row, ctx: row[slot]
    if isinstance(expr, UnaryOperation):
        operand = compile_row_expr(expr.operand, layout, tables)
        if expr.op == "NOT":
            return lambda row, ctx: (
                None if (v := operand(row, ctx)) is None else not _is_true(v)
            )
        return lambda row, ctx: (
            None if (v := operand(row, ctx)) is None else -v
        )
    if isinstance(expr, BinaryOperation):
        op = expr.op
        left = compile_row_expr(expr.left, layout, tables)
        right = compile_row_expr(expr.right, layout, tables)
        if op is BinaryOperator.AND:
            return lambda row, ctx: (
                _is_true(left(row, ctx)) and _is_true(right(row, ctx))
            )
        if op is BinaryOperator.OR:
            return lambda row, ctx: (
                _is_true(left(row, ctx)) or _is_true(right(row, ctx))
            )
        if op is BinaryOperator.EQ:
            # The hottest predicate form; specialise it.
            def eq_fn(row: Sequence[Any], ctx: ExecContext) -> Any:
                a = left(row, ctx)
                if a is None:
                    return None
                b = right(row, ctx)
                if b is None:
                    return None
                return a == b

            return eq_fn
        return lambda row, ctx: _apply_binop(
            op, left(row, ctx), right(row, ctx), expr
        )
    if isinstance(expr, IsNull):
        operand = compile_row_expr(expr.operand, layout, tables)
        if expr.negated:
            return lambda row, ctx: operand(row, ctx) is not None
        return lambda row, ctx: operand(row, ctx) is None
    if isinstance(expr, InList):
        operand = compile_row_expr(expr.operand, layout, tables)
        items = [compile_row_expr(item, layout, tables) for item in expr.items]
        negated = expr.negated

        def in_fn(row: Sequence[Any], ctx: ExecContext) -> Any:
            value = operand(row, ctx)
            # Evaluate every member (as the interpreter does) so side effects
            # such as subquery statistics are identical.
            members = [item(row, ctx) for item in items]
            found = value in members
            return (not found) if negated else found

        return in_fn
    if isinstance(expr, FunctionExpr):
        if expr.is_aggregate:
            raise ExecutionError(
                f"aggregate function {expr.name} is not allowed here"
            )
        return _compile_scalar_function(expr, layout, tables)
    if isinstance(expr, ScalarSubquery):
        return _compile_subquery(expr, tables)
    if isinstance(expr, Star):
        raise ExecutionError("'*' is only valid in SELECT lists and COUNT(*)")
    raise ExecutionError(f"unsupported expression {expr!r}")


def _compile_scalar_function(
    expr: FunctionExpr, layout: SlotLayout, tables: Dict[str, Table]
) -> RowFn:
    name = expr.name.upper()
    args = [compile_row_expr(arg, layout, tables) for arg in expr.args]
    if name == "COALESCE":
        def coalesce_fn(row: Sequence[Any], ctx: ExecContext) -> Any:
            for arg in args:
                value = arg(row, ctx)
                if value is not None:
                    return value
            return None

        return coalesce_fn
    fn = _SCALAR_FUNCTIONS.get(name)
    if fn is not None and len(args) == 1:
        arg = args[0]
        return lambda row, ctx: fn(arg(row, ctx))
    raise ExecutionError(f"unknown function {expr.name!r}")


def _compile_subquery(expr: ScalarSubquery, tables: Dict[str, Table]) -> RowFn:
    # Imported lazily: the planner imports this module at load time.
    from repro.relalg.planner import plan_select

    plan = plan_select(expr.select, tables)

    def subquery_fn(row: Sequence[Any], ctx: ExecContext) -> Any:
        result = plan.execute(ctx.params, QueryStats())
        ctx.stats.merge(result.stats)
        ctx.stats.subqueries += 1
        if len(result.rows) == 0:
            return None
        if len(result.rows) != 1 or len(result.columns) != 1:
            raise ExecutionError(
                f"scalar subquery returned {len(result.rows)} row(s) × "
                f"{len(result.columns)} column(s)"
            )
        return result.rows[0][0]

    return subquery_fn


# --------------------------------------------------------------------------- #
# batch compilation (vectorized columnar scans)
# --------------------------------------------------------------------------- #

#: A compiled batch predicate over one columnar chunk:
#: ``fn(columns, n, ctx) -> surviving row indexes`` (ascending, chunk-local),
#: or ``None`` meaning every row survived.
BatchPredicate = Callable[
    [Sequence[List[Any]], int, "ExecContext"], Optional[List[int]]
]

#: ``("const", fn(ctx) -> value)`` — row-independent subexpression, or
#: ``("vec", fn(columns, n, ctx) -> values, needed column positions)``.
_BatchNode = Tuple[Any, ...]


def _gather(
    cols: Sequence[List[Any]], needed: frozenset, idxs: List[int]
) -> List[Optional[List[Any]]]:
    """Project ``cols`` down to the rows in ``idxs``.

    Only the positions a subtree actually reads (``needed``) are gathered;
    the rest stay ``None``, keeping conditional evaluation (AND/OR/COALESCE
    narrowing) linear in the surviving-row count rather than the chunk width.
    """
    sub: List[Optional[List[Any]]] = [None] * len(cols)
    for j in needed:
        column = cols[j]
        sub[j] = [column[i] for i in idxs]
    return sub


_BATCH_PY_OPS = {
    BinaryOperator.ADD: lambda a, b: a + b,
    BinaryOperator.SUB: lambda a, b: a - b,
    BinaryOperator.MUL: lambda a, b: a * b,
    BinaryOperator.DIV: lambda a, b: a / b,
    BinaryOperator.NE: lambda a, b: a != b,
    BinaryOperator.LT: lambda a, b: a < b,
    BinaryOperator.LE: lambda a, b: a <= b,
    BinaryOperator.GT: lambda a, b: a > b,
    BinaryOperator.GE: lambda a, b: a >= b,
}


def _batch_binop(op: BinaryOperator, left: _BatchNode,
                 right: _BatchNode,
                 source: Optional[SqlExpr] = None) -> _BatchNode:
    """Batch form of a non-logical binary operator.

    The fast inner comprehension uses the raw Python operator; if it raises
    (mixed-type comparison, division by zero) the chunk is re-evaluated
    through :func:`_apply_binop`, which raises the row engine's exact error
    at the exact offending row — the happy path stays allocation-lean while
    the error path stays byte-identical.  ``source`` is the originating AST
    node, threaded into :func:`_apply_binop` so replayed errors name the
    offending expression.
    """
    lkind, lfn = left[0], left[1]
    rkind, rfn = right[0], right[1]
    if op is BinaryOperator.EQ:
        # Mirror the row path's specialised eq_fn: the right operand is only
        # evaluated when the left came out non-NULL.
        if lkind == "const" and rkind == "const":
            def eq_const(ctx: ExecContext) -> Any:
                a = lfn(ctx)
                if a is None:
                    return None
                b = rfn(ctx)
                if b is None:
                    return None
                return a == b

            return ("const", eq_const)
        if lkind == "const":
            def eq_cv(cols, n, ctx):
                a = lfn(ctx)
                if a is None:
                    return [None] * n
                return [None if v is None else a == v
                        for v in rfn(cols, n, ctx)]

            return ("vec", eq_cv, right[2])
        if rkind == "const":
            def eq_vc(cols, n, ctx):
                a = lfn(cols, n, ctx)
                out: List[Any] = [None] * n
                idxs = [i for i, v in enumerate(a) if v is not None]
                if not idxs:
                    return out
                b = rfn(ctx)
                if b is None:
                    return out
                for i in idxs:
                    out[i] = a[i] == b
                return out

            return ("vec", eq_vc, left[2])

        def eq_vv(cols, n, ctx):
            return [
                None if (x is None or y is None) else x == y
                for x, y in zip(lfn(cols, n, ctx), rfn(cols, n, ctx))
            ]

        return ("vec", eq_vv, left[2] | right[2])
    if lkind == "const" and rkind == "const":
        return (
            "const",
            lambda ctx: _apply_binop(op, lfn(ctx), rfn(ctx), source),
        )
    py = _BATCH_PY_OPS[op]
    if lkind == "const":
        def op_cv(cols, n, ctx):
            a = lfn(ctx)
            b = rfn(cols, n, ctx)
            if a is None:
                return [None] * n
            try:
                return [None if y is None else py(a, y) for y in b]
            except (TypeError, ZeroDivisionError):
                return [_apply_binop(op, a, y, source) for y in b]

        return ("vec", op_cv, right[2])
    if rkind == "const":
        def op_vc(cols, n, ctx):
            a = lfn(cols, n, ctx)
            b = rfn(ctx)
            if b is None:
                return [None] * n
            try:
                return [None if x is None else py(x, b) for x in a]
            except (TypeError, ZeroDivisionError):
                return [_apply_binop(op, x, b, source) for x in a]

        return ("vec", op_vc, left[2])

    def op_vv(cols, n, ctx):
        a = lfn(cols, n, ctx)
        b = rfn(cols, n, ctx)
        try:
            return [
                None if (x is None or y is None) else py(x, y)
                for x, y in zip(a, b)
            ]
        except (TypeError, ZeroDivisionError):
            return [_apply_binop(op, x, y, source) for x, y in zip(a, b)]

    return ("vec", op_vv, left[2] | right[2])


def _batch_logical(op: BinaryOperator, left: _BatchNode,
                   right: _BatchNode) -> _BatchNode:
    """Batch AND/OR with the row path's short-circuit evaluation order.

    The right operand is evaluated only over the rows the left side did not
    already decide (left-truthy rows for AND, left-falsy for OR), via
    :func:`_gather` — so a right side that would raise (missing parameter,
    type error) raises exactly when the row engine would.
    """
    lkind, lfn = left[0], left[1]
    rkind, rfn = right[0], right[1]
    conjunction = op is BinaryOperator.AND
    if lkind == "const" and rkind == "const":
        if conjunction:
            return ("const",
                    lambda ctx: _is_true(lfn(ctx)) and _is_true(rfn(ctx)))
        return ("const",
                lambda ctx: _is_true(lfn(ctx)) or _is_true(rfn(ctx)))
    if lkind == "const":
        def logical_cv(cols, n, ctx):
            decided = _is_true(lfn(ctx))
            if conjunction and not decided:
                return [False] * n
            if not conjunction and decided:
                return [True] * n
            return [_is_true(v) for v in rfn(cols, n, ctx)]

        return ("vec", logical_cv, right[2])

    def logical_v(cols, n, ctx):
        lv = lfn(cols, n, ctx)
        if conjunction:
            out = [False] * n
            undecided = [i for i, v in enumerate(lv) if _is_true(v)]
        else:
            out = [_is_true(v) for v in lv]
            undecided = [i for i in range(n) if not out[i]]
        if not undecided:
            return out
        if rkind == "const":
            if _is_true(rfn(ctx)):
                for i in undecided:
                    out[i] = True
            return out
        sub = _gather(cols, right[2], undecided)
        rv = rfn(sub, len(undecided), ctx)
        for i, v in zip(undecided, rv):
            out[i] = _is_true(v)
        return out

    needed = left[2] | (right[2] if rkind == "vec" else frozenset())
    return ("vec", logical_v, needed)


def _batch_node(expr: SqlExpr, layout: SlotLayout, offset: int,
                end: int) -> Optional[_BatchNode]:
    """Compile ``expr`` into a batch node, or ``None`` if not vectorizable.

    ``[offset, end)`` is the slot range of the driving binding — the only
    columns a chunk materialises.  Anything outside it (join slots), scalar
    subqueries and unknown functions fall back to the row-at-a-time path by
    returning ``None``.
    """
    if isinstance(expr, Literal):
        value = expr.value
        return ("const", lambda ctx: value)
    if isinstance(expr, Placeholder):
        index = expr.index
        needed = index + 1

        def param_fn(ctx: ExecContext) -> Any:
            params = ctx.params
            if index >= len(params):
                raise ExecutionError(
                    f"statement uses {needed} parameter(s) but only "
                    f"{len(params)} were supplied"
                )
            return params[index]

        return ("const", param_fn)
    if isinstance(expr, ColumnRef):
        slot = layout.resolve(expr)
        if not offset <= slot < end:
            return None
        j = slot - offset
        return ("vec", lambda cols, n, ctx: cols[j], frozenset((j,)))
    if isinstance(expr, UnaryOperation):
        operand = _batch_node(expr.operand, layout, offset, end)
        if operand is None:
            return None
        okind, ofn = operand[0], operand[1]
        if expr.op == "NOT":
            if okind == "const":
                return ("const", lambda ctx: (
                    None if (v := ofn(ctx)) is None else not _is_true(v)
                ))
            return ("vec", lambda cols, n, ctx: [
                None if v is None else not _is_true(v)
                for v in ofn(cols, n, ctx)
            ], operand[2])
        if okind == "const":
            return ("const", lambda ctx: (
                None if (v := ofn(ctx)) is None else -v
            ))
        return ("vec", lambda cols, n, ctx: [
            None if v is None else -v for v in ofn(cols, n, ctx)
        ], operand[2])
    if isinstance(expr, BinaryOperation):
        left = _batch_node(expr.left, layout, offset, end)
        if left is None:
            return None
        right = _batch_node(expr.right, layout, offset, end)
        if right is None:
            return None
        if expr.op in (BinaryOperator.AND, BinaryOperator.OR):
            return _batch_logical(expr.op, left, right)
        return _batch_binop(expr.op, left, right, expr)
    if isinstance(expr, IsNull):
        operand = _batch_node(expr.operand, layout, offset, end)
        if operand is None:
            return None
        okind, ofn = operand[0], operand[1]
        negated = expr.negated
        if okind == "const":
            if negated:
                return ("const", lambda ctx: ofn(ctx) is not None)
            return ("const", lambda ctx: ofn(ctx) is None)
        if negated:
            return ("vec", lambda cols, n, ctx: [
                v is not None for v in ofn(cols, n, ctx)
            ], operand[2])
        return ("vec", lambda cols, n, ctx: [
            v is None for v in ofn(cols, n, ctx)
        ], operand[2])
    if isinstance(expr, InList):
        operand = _batch_node(expr.operand, layout, offset, end)
        if operand is None:
            return None
        item_nodes = [
            _batch_node(item, layout, offset, end) for item in expr.items
        ]
        # Row-dependent list members would need per-row re-evaluation; leave
        # those predicates to the row engine.
        if any(node is None or node[0] != "const" for node in item_nodes):
            return None
        item_fns = [node[1] for node in item_nodes]
        okind, ofn = operand[0], operand[1]
        negated = expr.negated
        if okind == "const":
            def in_const(ctx: ExecContext) -> Any:
                value = ofn(ctx)
                members = [fn(ctx) for fn in item_fns]
                found = value in members
                return (not found) if negated else found

            return ("const", in_const)

        def in_vec(cols, n, ctx):
            values = ofn(cols, n, ctx)
            members = [fn(ctx) for fn in item_fns]
            if negated:
                return [v not in members for v in values]
            return [v in members for v in values]

        return ("vec", in_vec, operand[2])
    if isinstance(expr, FunctionExpr):
        return _batch_function(expr, layout, offset, end)
    # ScalarSubquery (needs per-row plan execution + stats merging), Star and
    # anything unrecognised: row-at-a-time only.
    return None


def _batch_function(expr: FunctionExpr, layout: SlotLayout, offset: int,
                    end: int) -> Optional[_BatchNode]:
    if expr.is_aggregate:
        return None
    name = expr.name.upper()
    arg_nodes = [
        _batch_node(arg, layout, offset, end) for arg in expr.args
    ]
    if any(node is None for node in arg_nodes):
        return None
    if name == "COALESCE":
        if all(node[0] == "const" for node in arg_nodes):
            fns = [node[1] for node in arg_nodes]

            def coalesce_const(ctx: ExecContext) -> Any:
                for fn in fns:
                    value = fn(ctx)
                    if value is not None:
                        return value
                return None

            return ("const", coalesce_const)
        needed = frozenset().union(
            *(node[2] for node in arg_nodes if node[0] == "vec")
        )

        def coalesce_vec(cols, n, ctx):
            out: List[Any] = [None] * n
            pending = list(range(n))
            for node in arg_nodes:
                if not pending:
                    break
                if node[0] == "const":
                    value = node[1](ctx)
                    if value is not None:
                        for i in pending:
                            out[i] = value
                        pending = []
                    continue
                if len(pending) == n:
                    values = node[1](cols, n, ctx)
                else:
                    sub = _gather(cols, node[2], pending)
                    values = node[1](sub, len(pending), ctx)
                still: List[int] = []
                for i, v in zip(pending, values):
                    if v is None:
                        still.append(i)
                    else:
                        out[i] = v
                pending = still
            return out

        return ("vec", coalesce_vec, needed)
    fn = _SCALAR_FUNCTIONS.get(name)
    if fn is None or len(arg_nodes) != 1:
        return None
    node = arg_nodes[0]
    if node[0] == "const":
        afn = node[1]
        return ("const", lambda ctx: fn(afn(ctx)))
    afn = node[1]
    return ("vec", lambda cols, n, ctx: [
        fn(v) for v in afn(cols, n, ctx)
    ], node[2])


def compile_batch_predicate(
    exprs: Sequence[SqlExpr], layout: SlotLayout, offset: int, end: int
) -> Optional[BatchPredicate]:
    """Compile a conjunct list into one batch predicate, or ``None``.

    The predicate evaluates the conjuncts in order over a columnar chunk of
    the driving binding (slots ``[offset, end)``), narrowing the surviving
    row set between conjuncts exactly as the row engine's per-row
    short-circuit does: a later conjunct only ever sees — and can only ever
    raise for — rows that passed every earlier one.  It returns ascending
    chunk-local row indexes, or ``None`` when every row survived.

    Returns ``None`` (not vectorizable) when any conjunct contains a scalar
    subquery, a column outside the driving binding, a row-dependent IN list
    or an unknown function — the caller then keeps the row-at-a-time path.
    """
    compiled: List[_BatchNode] = []
    for expr in exprs:
        node = _batch_node(expr, layout, offset, end)
        if node is None:
            return None
        compiled.append(node)

    def predicate(cols, n, ctx):
        if not n:
            return []
        sel: Optional[List[int]] = None
        for node in compiled:
            if sel is not None and not sel:
                return sel
            if node[0] == "const":
                if not _is_true(node[1](ctx)):
                    sel = []
                continue
            if sel is None:
                values = node[1](cols, n, ctx)
                sel = [i for i, v in enumerate(values) if _is_true(v)]
            else:
                sub = _gather(cols, node[2], sel)
                values = node[1](sub, len(sel), ctx)
                sel = [i for i, v in zip(sel, values) if _is_true(v)]
        return sel

    return predicate


def compile_batch_expr(
    expr: SqlExpr, layout: SlotLayout, offset: int, end: int
) -> Optional[_BatchNode]:
    """Compile one expression into a batch node, or ``None``.

    Public entry point over the node compiler: ``("const", fn(ctx))`` for
    row-independent expressions, ``("vec", fn(columns, n, ctx), needed)``
    for column-dependent ones.  ``[offset, end)`` is the slot range the
    caller can materialise as columns; expressions reaching outside it (or
    containing scalar subqueries, row-dependent IN lists or unknown
    functions) return ``None`` and stay on the row-at-a-time path.
    """
    return _batch_node(expr, layout, offset, end)


def compile_batch_projection(
    statement: Any, layout: SlotLayout
) -> Optional[Callable[[List[Tuple[Any, ...]], "ExecContext"],
                       List[Tuple[Any, ...]]]]:
    """Compile the select list into one whole-result batch projector.

    Generalises the all-ColumnRef ``batch_projector`` fast path: arithmetic,
    COALESCE and scalar functions evaluate column-at-a-time over the joined
    rows (``fn(rows, ctx) -> projected rows``).  Returns ``None`` when any
    item fails to batch-compile (scalar subqueries, unknown functions) — the
    caller keeps the per-row projector.

    The closure is pure with respect to ``ctx`` (nothing that batch-compiles
    touches the statistics counters), so a caller catching an error here may
    replay the per-row projector to reproduce the row engine's exact error
    and evaluation order.
    """
    width = layout.width
    parts: List[Tuple[Any, ...]] = []
    for item in statement.items:
        expr = item.expr
        if isinstance(expr, Star):
            for binding, _table in layout.bindings:
                if expr.table is not None and expr.table.lower() != binding:
                    continue
                offset, end = layout.range_of(binding)
                parts.extend(("slot", j) for j in range(offset, end))
            continue
        if isinstance(expr, ColumnRef):
            parts.append(("slot", layout.resolve(expr)))
            continue
        node = _batch_node(expr, layout, 0, width)
        if node is None:
            return None
        parts.append(node)
    needed: set = set()
    for part in parts:
        if part[0] == "slot":
            needed.add(part[1])
        elif part[0] == "vec":
            needed |= part[2]

    def project_batch(rows, ctx):
        n = len(rows)
        if not n:
            return []
        cols: List[Optional[List[Any]]] = [None] * width
        for j in needed:
            cols[j] = [row[j] for row in rows]
        out_cols = []
        for part in parts:
            kind = part[0]
            if kind == "slot":
                out_cols.append(cols[part[1]])
            elif kind == "const":
                out_cols.append([part[1](ctx)] * n)
            else:
                out_cols.append(part[1](cols, n, ctx))
        return list(zip(*out_cols))

    return project_batch


#: Final folds over one group's NULL-stripped (and DISTINCT-deduped) value
#: list — the exact reductions :func:`_compile_aggregate_function` applies,
#: shared by the batch aggregator so accumulation order (and hence float
#: results) stays byte-identical.
_BATCH_AGG_FOLDS: Dict[str, Callable[[List[Any]], Any]] = {
    "COUNT": lambda values: len(values),
    "SUM": lambda values: sum(values) if values else None,
    "AVG": lambda values: (sum(values) / len(values)) if values else None,
    "MIN": lambda values: min(values) if values else None,
    "MAX": lambda values: max(values) if values else None,
}


def compile_batch_aggregate(
    statement: Any,
    layout: SlotLayout,
    item_group_fns: List[GroupFn],
    having_fn: Optional[GroupFn],
) -> Optional[Callable[[List[Tuple[Any, ...]], "ExecContext"],
                       Optional[List[Tuple[Any, ...]]]]]:
    """Compile grouped aggregation into one batch fold over the joined rows.

    Instead of materialising ``List[row]`` groups and re-walking each group
    once per aggregate closure, the batch path gathers the referenced
    columns once, assigns group ids in a single pass and folds each
    COUNT/SUM/MIN/MAX/AVG per-column into per-group accumulators —
    reproducing the row engine's semantics exactly: NULLs are skipped in row
    order, DISTINCT dedups on first occurrence via ``_hashable``, group keys
    are ``_hashable``-wrapped tuples in first-seen order, and float sums
    accumulate in enumeration order.

    Select items that are not plain batchable aggregates (expressions *of*
    aggregates, grouping keys in the select list, scalar subqueries) fall
    back to their compiled group closure over the materialised group rows,
    evaluated group-major exactly like the row path.  HAVING always uses the
    row path's group closure.  Returns ``None`` at compile time when the
    group keys do not batch-compile or no item does; the returned closure
    itself returns ``None`` (having had no observable effect) when a fold
    raises — the caller then replays the row-at-a-time aggregation, which
    reproduces the exact row-path error or result.
    """
    width = layout.width
    key_nodes: List[_BatchNode] = []
    for expr in statement.group_by:
        node = _batch_node(expr, layout, 0, width)
        if node is None:
            return None
        key_nodes.append(node)
    #: ("count*",) | ("fold", final_fold, arg_node, distinct) | ("group", fn)
    item_plans: List[Tuple[Any, ...]] = []
    batched = 0
    for index, item in enumerate(statement.items):
        expr = item.expr
        plan: Optional[Tuple[Any, ...]] = None
        if isinstance(expr, FunctionExpr) and expr.is_aggregate:
            name = expr.name.upper()
            if name == "COUNT" and (
                not expr.args or isinstance(expr.args[0], Star)
            ):
                plan = ("count*",)
            elif name in _BATCH_AGG_FOLDS and expr.args:
                node = _batch_node(expr.args[0], layout, 0, width)
                if node is not None:
                    plan = ("fold", _BATCH_AGG_FOLDS[name], node,
                            expr.distinct)
        if plan is None:
            plan = ("group", item_group_fns[index])
        else:
            batched += 1
        item_plans.append(plan)
    if not batched:
        return None
    needed: set = set()
    for node in key_nodes:
        if node[0] == "vec":
            needed |= node[2]
    for plan in item_plans:
        if plan[0] == "fold" and plan[2][0] == "vec":
            needed |= plan[2][2]
    need_group_rows = having_fn is not None or any(
        plan[0] == "group" for plan in item_plans
    )

    def batch_aggregate(rows, ctx):
        # The pre-pass (column gathering, group assignment, aggregate folds)
        # is pure: nothing here touches ctx.stats, so bailing out with None
        # lets the caller replay the row path for the byte-identical result —
        # including errors the row path would only raise later (or, when a
        # HAVING filters the offending group, never).
        try:
            n = len(rows)
            cols: List[Optional[List[Any]]] = [None] * width
            for j in needed:
                cols[j] = [row[j] for row in rows]
            group_ids: Dict[Tuple[Any, ...], int] = {}
            order_count = 0
            member_idxs: List[List[int]] = []
            if key_nodes:
                key_cols = []
                for node in key_nodes:
                    if node[0] == "const":
                        key_cols.append([_hashable(node[1](ctx))] * n)
                    else:
                        key_cols.append(
                            [_hashable(v) for v in node[1](cols, n, ctx)]
                        )
                if len(key_cols) == 1:
                    keys: Any = ((k,) for k in key_cols[0])
                else:
                    keys = zip(*key_cols)
                for i, key in enumerate(keys):
                    gid = group_ids.get(key)
                    if gid is None:
                        group_ids[key] = gid = order_count
                        order_count += 1
                        member_idxs.append([i])
                    else:
                        member_idxs[gid].append(i)
            else:
                member_idxs.append(list(range(n)))
                order_count = 1
            folded: List[Optional[List[Any]]] = [None] * len(item_plans)
            for index, plan in enumerate(item_plans):
                kind = plan[0]
                if kind == "count*":
                    folded[index] = [len(idxs) for idxs in member_idxs]
                elif kind == "fold":
                    _, final_fold, node, distinct = plan
                    if node[0] == "const":
                        col = [node[1](ctx)] * n
                    else:
                        col = node[1](cols, n, ctx)
                    per_group = []
                    for idxs in member_idxs:
                        values = [
                            v for i in idxs if (v := col[i]) is not None
                        ]
                        if distinct and values:
                            seen: set = set()
                            unique = []
                            for value in values:
                                key = _hashable(value)
                                if key not in seen:
                                    seen.add(key)
                                    unique.append(value)
                            values = unique
                        per_group.append(final_fold(values))
                    folded[index] = per_group
        except Exception:  # lint: allow-broad-except
            return None
        # Emission is group-major — HAVING first, then the items left to
        # right — exactly the row path's order, so closures with side
        # effects (scalar subqueries bumping counters) stay byte-identical.
        out: List[Tuple[Any, ...]] = []
        for gid in range(order_count):
            group = (
                [rows[i] for i in member_idxs[gid]] if need_group_rows
                else None
            )
            if having_fn is not None and not _is_true(having_fn(group, ctx)):
                continue
            out.append(tuple(
                plan[1](group, ctx) if plan[0] == "group" else folded[index][gid]
                for index, plan in enumerate(item_plans)
            ))
        return out

    return batch_aggregate


# --------------------------------------------------------------------------- #
# per-group compilation (aggregate queries)
# --------------------------------------------------------------------------- #


def compile_group_expr(
    expr: SqlExpr, layout: SlotLayout, tables: Dict[str, Table]
) -> GroupFn:
    """Compile an expression that may contain aggregate functions.

    The closure receives the materialised rows of one group.  Semantics follow
    the reference interpreter: aggregates fold the group, plain column
    references pick the first row (they are expected to be grouping keys), and
    literals / parameters / scalar subqueries ignore the group entirely.
    """
    if isinstance(expr, FunctionExpr) and expr.is_aggregate:
        return _compile_aggregate_function(expr, layout, tables)
    if isinstance(expr, BinaryOperation):
        op = expr.op
        left = compile_group_expr(expr.left, layout, tables)
        right = compile_group_expr(expr.right, layout, tables)
        if op in (BinaryOperator.AND, BinaryOperator.OR):
            # The interpreter evaluates both children before combining.
            if op is BinaryOperator.AND:
                return lambda group, ctx: (
                    _is_true(left(group, ctx)) and _is_true(right(group, ctx))
                )
            return lambda group, ctx: (
                _is_true(left(group, ctx)) or _is_true(right(group, ctx))
            )
        return lambda group, ctx: _apply_binop(
            op, left(group, ctx), right(group, ctx)
        )
    if isinstance(expr, UnaryOperation):
        operand = compile_group_expr(expr.operand, layout, tables)
        if expr.op == "NOT":
            return lambda group, ctx: (
                None if (v := operand(group, ctx)) is None else not _is_true(v)
            )
        return lambda group, ctx: (
            None if (v := operand(group, ctx)) is None else -v
        )
    if isinstance(expr, (Literal, Placeholder, ScalarSubquery)):
        row_fn = compile_row_expr(expr, layout, tables)
        return lambda group, ctx: row_fn((), ctx)
    # Plain column references (and scalar functions over them) pick the value
    # of the first row of the group.
    row_fn = compile_row_expr(expr, layout, tables)
    return lambda group, ctx: (row_fn(group[0], ctx) if group else None)


def _compile_aggregate_function(
    expr: FunctionExpr, layout: SlotLayout, tables: Dict[str, Table]
) -> GroupFn:
    name = expr.name.upper()
    if name == "COUNT" and (not expr.args or isinstance(expr.args[0], Star)):
        return lambda group, ctx: len(group)
    if not expr.args:
        raise ExecutionError(f"aggregate {name} requires an argument")
    arg = compile_row_expr(expr.args[0], layout, tables)
    distinct = expr.distinct

    def values_of(group: List[Tuple[Any, ...]], ctx: ExecContext) -> List[Any]:
        values = [v for row in group if (v := arg(row, ctx)) is not None]
        if distinct:
            seen = set()
            unique = []
            for value in values:
                key = _hashable(value)
                if key not in seen:
                    seen.add(key)
                    unique.append(value)
            values = unique
        return values

    if name == "COUNT":
        return lambda group, ctx: len(values_of(group, ctx))
    if name == "SUM":
        return lambda group, ctx: (
            sum(values) if (values := values_of(group, ctx)) else None
        )
    if name == "AVG":
        return lambda group, ctx: (
            (sum(values) / len(values))
            if (values := values_of(group, ctx))
            else None
        )
    if name == "MIN":
        return lambda group, ctx: (
            min(values) if (values := values_of(group, ctx)) else None
        )
    if name == "MAX":
        return lambda group, ctx: (
            max(values) if (values := values_of(group, ctx)) else None
        )
    raise ExecutionError(f"unknown aggregate {name}")


# --------------------------------------------------------------------------- #
# DML binding (compiled INSERT value rows)
# --------------------------------------------------------------------------- #

#: A compiled parameter binder: ``bind(params) -> value``.
ConstFn = Callable[[Sequence[Any]], Any]


def _compile_const_expr(expr: SqlExpr) -> ConstFn:
    """Compile an INSERT value expression (literal / ``?`` / negation).

    All node-type dispatch happens here, once per statement; binding a
    parameter row is then a plain closure call per value.
    """
    if isinstance(expr, Literal):
        value = expr.value
        return lambda params: value
    if isinstance(expr, Placeholder):
        index = expr.index

        def param_fn(params: Sequence[Any]) -> Any:
            if index >= len(params):
                raise ExecutionError(
                    f"INSERT uses parameter {index + 1} but only "
                    f"{len(params)} parameter(s) were supplied"
                )
            return params[index]

        return param_fn
    if isinstance(expr, UnaryOperation) and expr.op == "-":
        operand = _compile_const_expr(expr.operand)

        def negate_fn(params: Sequence[Any]) -> Any:
            value = operand(params)
            return None if value is None else -value

        return negate_fn
    raise ExecutionError("INSERT values must be literals or '?' parameters")


def compile_insert_binder(
    statement: InsertStatement, table: Table
) -> Callable[[Sequence[Any]], List[List[Any]]]:
    """Compile an INSERT statement into a parameter binder.

    The returned ``bind(params)`` produces one full-width positional value
    row (schema column order, unmentioned columns ``None``) per ``VALUES``
    row of the statement.  Column-name resolution, arity checking and value
    expression dispatch all happen once here, so ``executemany`` re-binds a
    cached closure per parameter row instead of re-walking the statement —
    the DML counterpart of the SELECT plan cache.
    """
    schema = table.schema
    width = len(schema.columns)
    if statement.columns:
        positions = [schema.column_index(name) for name in statement.columns]
    else:
        positions = None
    compiled_rows: List[List[ConstFn]] = []
    for row_exprs in statement.rows:
        if positions is not None and len(row_exprs) != len(positions):
            raise ExecutionError(
                f"INSERT specifies {len(positions)} column(s) "
                f"but {len(row_exprs)} value(s)"
            )
        compiled_rows.append([_compile_const_expr(e) for e in row_exprs])

    def bind(params: Sequence[Any]) -> List[List[Any]]:
        rows: List[List[Any]] = []
        for fns in compiled_rows:
            if positions is None:
                rows.append([fn(params) for fn in fns])
            else:
                row: List[Any] = [None] * width
                for position, fn in zip(positions, fns):
                    row[position] = fn(params)
                rows.append(row)
        return rows

    return bind
