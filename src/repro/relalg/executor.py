"""Query execution: the plan-driven SELECT engine.

Execution proceeds in two phases (see the module docstrings of
:mod:`repro.relalg.planner` and :mod:`repro.relalg.compile`):

1. **plan** — once per statement, :func:`~repro.relalg.planner.plan_select`
   chooses a join order by bound-predicate availability, classifies the WHERE
   conjuncts into index probes, hash-join build/probe pairs and residual
   filters, and compiles every expression into a Python closure over a
   slot-addressed row (tuple positions resolved at plan time);
2. **execute** — per call, :meth:`QueryPlan.execute` runs the compiled plan,
   counting the physical work in :class:`QueryStats` exactly as the seed
   engine did on the index/scan paths (the simulated backends convert the
   counters into virtual elapsed time, and the A1 ablation reports them
   directly).  When the plan is vector-eligible (a scan-driven level whose
   filters batch-compile) and the caller passes ``vectorized=True``, the
   driving level reads columnar chunks instead of row tuples — same rows,
   same stats, one Python-level dispatch per chunk instead of per row.
   Batch execution then continues past the driving scan wherever the plan
   proved eligibility: surviving chunks probe the hash-join build side in
   batch, grouped aggregates fold per-column into per-group accumulators
   (:func:`~repro.relalg.compile.compile_batch_aggregate`), non-aggregate
   projections evaluate whole output columns at once, and ``ORDER BY`` +
   ``LIMIT`` selects the top k through a bounded heap instead of a full
   sort.  Every rung falls back to the row path per statement — never
   per chunk — so results, errors and stats stay byte-identical.

This facade always executes row-at-a-time; the vectorized drive mode is
chosen by :class:`~repro.relalg.database.Database` (the default there),
which also forces the row path while a transaction has staged writes so
reads see them.

:class:`Database` caches plans per SQL text; :class:`SelectExecutor` is the
uncached single-statement facade that keeps the original executor API.  The
seed's AST-walking engine survives as
:class:`repro.relalg.interp.InterpretedSelectExecutor` for differential
testing and benchmark baselines.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

from repro.relalg.planner import QueryPlan, plan_select
from repro.relalg.rowset import QueryStats, ResultSet
from repro.relalg.sqlast import SelectStatement
from repro.relalg.storage import Table

__all__ = ["QueryStats", "ResultSet", "SelectExecutor"]


class SelectExecutor:
    """Executes SELECT statements against a table catalog.

    Each :meth:`execute` call plans the statement and runs the plan.  Callers
    that execute the same statement repeatedly should go through
    :class:`~repro.relalg.database.Database`, whose plan cache skips the
    planning phase on re-execution; a pre-built plan can also be supplied
    directly.
    """

    def __init__(
        self,
        tables: Dict[str, Table],
        params: Sequence[Any] = (),
        stats: Optional[QueryStats] = None,
        plan: Optional[QueryPlan] = None,
    ) -> None:
        self.tables = tables
        self.params = list(params)
        self.stats = stats or QueryStats()
        self.plan = plan

    def execute(self, statement: SelectStatement) -> ResultSet:
        """Run the statement and return the materialised result."""
        plan = self.plan
        if plan is None or plan.statement is not statement:
            plan = plan_select(statement, self.tables)
        return plan.execute(self.params, self.stats)
