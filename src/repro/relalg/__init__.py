"""A from-scratch in-memory relational database engine with simulated backends.

This package is the substrate replacing the relational databases used by the
paper's COSY prototype (Oracle 7, MS Access, MS SQL Server, Postgres):

* :mod:`repro.relalg.schema`, :mod:`repro.relalg.storage` — tables, column
  types, rows and hash indexes;
* :mod:`repro.relalg.sqlparser`, :mod:`repro.relalg.sqlast` — the SQL subset
  (DDL, INSERT, parametrised SELECT with joins, grouping, aggregates, ordering
  and scalar subqueries);
* :mod:`repro.relalg.planner`, :mod:`repro.relalg.compile` — the
  plan-then-execute layer: join ordering, index/hash-join access paths and
  expression compilation into slot-addressed closures;
* :mod:`repro.relalg.semantics` — the plan-time static analysis pass:
  catalog-driven type inference, typed :class:`SemanticError` diagnostics
  raised before any row is touched, constant folding, contradiction
  detection and the lint warnings EXPLAIN surfaces under ``analysis:``;
* :mod:`repro.relalg.executor`, :mod:`repro.relalg.database` — plan-driven
  query execution and the database facade (with its statement-level plan
  cache); :mod:`repro.relalg.interp` keeps the seed AST-walking engine as the
  differential-testing and benchmark baseline;
* :mod:`repro.relalg.backends` — virtual cost models of the four backends the
  paper compares (Section 5), with the event-timeline virtual clock and the
  overlap-aware pipelining scheduler;
* :mod:`repro.relalg.client` — native (C-like) vs. bridged (JDBC-like) client
  API layers, plus the pipelined submit/gather ``AsyncClient``;
* :mod:`repro.relalg.wal` — write-ahead durability: the append-only log, the
  checkpoint sidecar, crash recovery and the byte-identical state
  fingerprints the crash harness checks against.
"""

from repro.relalg.backends import (
    BACKEND_PROFILES,
    DEFAULT_BATCH_SIZE,
    BackendProfile,
    PipelineSlot,
    PipelinedTimeline,
    SimulatedBackend,
    StatementCost,
    TimelineEvent,
    VirtualClock,
    backend,
)
from repro.relalg.client import (
    AsyncClient,
    BridgedClient,
    ClientCosts,
    DatabaseClient,
    NativeClient,
    PendingResult,
)
from repro.relalg.database import Database, ExecutionSummary
from repro.relalg.parallel import ProcessScanExecutor
from repro.relalg.errors import (
    ExecutionError,
    IntegrityError,
    RecoveryError,
    RelalgError,
    SchemaError,
    SemanticError,
    SqlSyntaxError,
    TransactionWarning,
)
from repro.relalg.executor import QueryStats, ResultSet, SelectExecutor
from repro.relalg.interp import InterpretedSelectExecutor
from repro.relalg.planner import (
    AccessPath,
    HashJoinBuild,
    IndexProbe,
    LevelSpec,
    PartitionScan,
    PlanSpec,
    QueryPlan,
    lower_plan,
    plan_select,
)
from repro.relalg.schema import Column, ColumnType, TableSchema
from repro.relalg.semantics import (
    Analysis,
    SqlType,
    analyze_select,
    check_delete,
    check_select,
    proves_integer,
)
from repro.relalg.sqlparser import SqlParser, parse_sql, tokenize_sql
from repro.relalg.compile import compile_batch_predicate
from repro.relalg.storage import (
    CHUNK_ROWS,
    HashIndex,
    Partition,
    PositionsView,
    Table,
    TableIndex,
    TableStatistics,
    Transaction,
    stable_hash,
)
from repro.relalg.wal import (
    WriteAheadLog,
    fingerprint_hash,
    restore_state,
    snapshot_state,
    state_fingerprint,
)

__all__ = [
    "AccessPath",
    "Analysis",
    "AsyncClient",
    "BACKEND_PROFILES",
    "BackendProfile",
    "BridgedClient",
    "CHUNK_ROWS",
    "ClientCosts",
    "Column",
    "ColumnType",
    "DEFAULT_BATCH_SIZE",
    "Database",
    "DatabaseClient",
    "ExecutionError",
    "ExecutionSummary",
    "HashIndex",
    "HashJoinBuild",
    "IndexProbe",
    "IntegrityError",
    "InterpretedSelectExecutor",
    "LevelSpec",
    "NativeClient",
    "Partition",
    "PartitionScan",
    "PendingResult",
    "PipelineSlot",
    "PipelinedTimeline",
    "PlanSpec",
    "PositionsView",
    "ProcessScanExecutor",
    "QueryPlan",
    "QueryStats",
    "RecoveryError",
    "RelalgError",
    "ResultSet",
    "SchemaError",
    "SelectExecutor",
    "SemanticError",
    "SimulatedBackend",
    "SqlParser",
    "SqlSyntaxError",
    "SqlType",
    "StatementCost",
    "Table",
    "TableIndex",
    "TableSchema",
    "TableStatistics",
    "TimelineEvent",
    "Transaction",
    "TransactionWarning",
    "VirtualClock",
    "WriteAheadLog",
    "analyze_select",
    "backend",
    "check_delete",
    "check_select",
    "compile_batch_predicate",
    "fingerprint_hash",
    "lower_plan",
    "parse_sql",
    "plan_select",
    "proves_integer",
    "restore_state",
    "snapshot_state",
    "stable_hash",
    "state_fingerprint",
    "tokenize_sql",
]
