"""Table schemas and column types of the relational engine.

The engine supports the small set of column types needed to store the COSY
performance data model: integers, double-precision floats, variable-length
strings, booleans and timestamps.  Schemas are declared either through
``CREATE TABLE`` statements or programmatically (the ASL→SQL compiler builds
:class:`TableSchema` objects directly from the checked data model).
"""

from __future__ import annotations

import datetime as _dt
import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.relalg.errors import IntegrityError, SchemaError

__all__ = ["ColumnType", "Column", "TableSchema"]


class ColumnType(enum.Enum):
    """Supported SQL column types (with their canonical SQL spelling)."""

    INTEGER = "INTEGER"
    FLOAT = "FLOAT"
    VARCHAR = "VARCHAR"
    BOOLEAN = "BOOLEAN"
    TIMESTAMP = "TIMESTAMP"

    @classmethod
    def from_sql(cls, spelling: str) -> "ColumnType":
        """Map a SQL type spelling (e.g. ``INT``, ``DOUBLE``) to a column type."""
        normalized = spelling.strip().upper()
        aliases = {
            "INT": cls.INTEGER,
            "INTEGER": cls.INTEGER,
            "BIGINT": cls.INTEGER,
            "SMALLINT": cls.INTEGER,
            "FLOAT": cls.FLOAT,
            "REAL": cls.FLOAT,
            "DOUBLE": cls.FLOAT,
            "NUMERIC": cls.FLOAT,
            "DECIMAL": cls.FLOAT,
            "VARCHAR": cls.VARCHAR,
            "CHAR": cls.VARCHAR,
            "TEXT": cls.VARCHAR,
            "STRING": cls.VARCHAR,
            "BOOLEAN": cls.BOOLEAN,
            "BOOL": cls.BOOLEAN,
            "TIMESTAMP": cls.TIMESTAMP,
            "DATETIME": cls.TIMESTAMP,
            "DATE": cls.TIMESTAMP,
        }
        try:
            return aliases[normalized]
        except KeyError:
            raise SchemaError(f"unsupported column type {spelling!r}") from None

    def validate(self, value: Any) -> Any:
        """Coerce/validate a Python value for storage in this column type.

        ``None`` is always accepted (NULL); numeric widening (int→float) is
        applied; anything else incompatible raises :class:`SchemaError`.
        """
        if value is None:
            return None
        if self is ColumnType.INTEGER:
            if isinstance(value, bool) or not isinstance(value, int):
                if isinstance(value, float) and value.is_integer():
                    return int(value)
                raise SchemaError(f"expected an integer, got {value!r}")
            return value
        if self is ColumnType.FLOAT:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise SchemaError(f"expected a number, got {value!r}")
            return float(value)
        if self is ColumnType.VARCHAR:
            if not isinstance(value, str):
                raise SchemaError(f"expected a string, got {value!r}")
            return value
        if self is ColumnType.BOOLEAN:
            if isinstance(value, bool):
                return value
            if isinstance(value, int) and value in (0, 1):
                return bool(value)
            raise SchemaError(f"expected a boolean, got {value!r}")
        if self is ColumnType.TIMESTAMP:
            if isinstance(value, _dt.datetime):
                return value
            if isinstance(value, str):
                try:
                    return _dt.datetime.fromisoformat(value)
                except ValueError:
                    raise SchemaError(
                        f"expected an ISO timestamp string, got {value!r}"
                    ) from None
            raise SchemaError(f"expected a timestamp, got {value!r}")
        raise AssertionError(f"unhandled column type {self}")


@dataclass(frozen=True)
class Column:
    """One column of a table."""

    name: str
    type: ColumnType
    nullable: bool = True
    primary_key: bool = False

    def sql(self) -> str:
        """Canonical SQL fragment of the column definition."""
        parts = [self.name, self.type.value]
        if self.primary_key:
            parts.append("PRIMARY KEY")
        elif not self.nullable:
            parts.append("NOT NULL")
        return " ".join(parts)


@dataclass
class TableSchema:
    """Schema of one table (column order matters for positional inserts)."""

    name: str
    columns: List[Column] = field(default_factory=list)

    def __post_init__(self) -> None:
        names = [c.name.lower() for c in self.columns]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise SchemaError(
                f"table {self.name!r} declares duplicate column(s) "
                f"{sorted(duplicates)}"
            )

    # -- lookup ----------------------------------------------------------------

    @property
    def column_names(self) -> List[str]:
        return [c.name for c in self.columns]

    def column(self, name: str) -> Column:
        """Case-insensitive column lookup; raises :class:`SchemaError`."""
        lowered = name.lower()
        for column in self.columns:
            if column.name.lower() == lowered:
                return column
        raise SchemaError(
            f"table {self.name!r} has no column {name!r} "
            f"(columns: {', '.join(self.column_names)})"
        )

    def column_index(self, name: str) -> int:
        lowered = name.lower()
        for index, column in enumerate(self.columns):
            if column.name.lower() == lowered:
                return index
        raise SchemaError(f"table {self.name!r} has no column {name!r}")

    def primary_key_columns(self) -> List[Column]:
        return [c for c in self.columns if c.primary_key]

    # -- rows -------------------------------------------------------------------

    def validate_row(self, values: Sequence[Any]) -> Tuple[Any, ...]:
        """Validate one positional row against the schema and coerce values."""
        if len(values) != len(self.columns):
            raise SchemaError(
                f"table {self.name!r} has {len(self.columns)} columns but the "
                f"row has {len(values)} values"
            )
        validated: List[Any] = []
        for column, value in zip(self.columns, values):
            coerced = column.type.validate(value)
            if coerced is None and (column.primary_key or not column.nullable):
                raise IntegrityError(
                    f"column {column.name!r} of table {self.name!r} must not "
                    f"be NULL"
                )
            validated.append(coerced)
        return tuple(validated)

    def row_from_mapping(self, mapping: Dict[str, Any]) -> Tuple[Any, ...]:
        """Build a positional row from a column→value mapping (missing → NULL)."""
        lowered = {key.lower(): value for key, value in mapping.items()}
        unknown = set(lowered) - {c.name.lower() for c in self.columns}
        if unknown:
            raise SchemaError(
                f"unknown column(s) {sorted(unknown)} for table {self.name!r}"
            )
        return self.validate_row(
            [lowered.get(c.name.lower()) for c in self.columns]
        )

    def sql(self) -> str:
        """Canonical ``CREATE TABLE`` statement for this schema."""
        body = ", ".join(column.sql() for column in self.columns)
        return f"CREATE TABLE {self.name} ({body})"
