"""Write-ahead logging: crash durability for the in-memory engine.

The log is **append-only JSONL**, one self-describing record per line, in
the order the database applied the work (the engine is single-session, so
the stream is strictly serial):

* ``{"t": "log", "gen": G}`` — header, first line of every (re)initialised
  log; ``G`` is the checkpoint generation the log continues from.
* ``{"t": "begin", "x": N}`` / ``{"t": "commit", "x": N}`` /
  ``{"t": "abort", "x": N}`` — explicit-transaction markers.
* ``{"t": "ins"|"del", "x": N, "tb": name, "rows": [...]}`` — logical
  row-images of one DML statement (validated inserts / deleted rows in
  deletion order).  ``x = 0`` marks an autocommit statement — an implicit
  single-statement transaction, durable once its own line is fsynced.
* ``{"t": "create_table" | "create_index" | "drop_table", ...}`` — DDL
  (always autocommit; DDL inside a transaction is refused upstream).

**Durability contract**: the log is fsynced when — and only when — a commit
point passes (explicit ``COMMIT``, autocommit DML, DDL); row-images inside
an open transaction are buffered by the OS until then.  Recovery-on-open
(:meth:`Database._recover_wal <repro.relalg.database.Database>`) replays the
committed prefix through the real transaction machinery (so deferred
compaction lands at the same points as in the original run — recovered
state is *byte-identical*, tombstones and statistics included), discards
uncommitted tails and torn final lines by truncating the file at the last
effective record, and refuses logs whose generation cannot be reconciled
with the checkpoint (:class:`~repro.relalg.errors.RecoveryError`).

**Checkpointing** bounds the log: the whole catalog is serialised to
``<wal_path>.ckpt`` (raw row lists with tombstones, secondary-index
definitions, the mutations counter — everything the byte-identical contract
needs), written atomically (tmp + fsync + rename + directory fsync) under
the *next* generation number, then the log is truncated and re-headed with
that generation.  A crash between the rename and the truncate leaves a log
one generation behind its checkpoint; recovery recognises the stale log and
discards it (its contents are inside the checkpoint).

**Fault-injection seam**: every write-path step — each line append, each
fsync, and each checkpoint file operation — reports to an optional ``hook``
callable *after* the step completes, with a label and a running event
count.  The crash harness (``tests/faultinject.py``) raises from the hook
to simulate dying at the ``n``-th write; because the log file is opened
unbuffered, "what the file contains at the crash point" is exactly what a
SIGKILL at the same point would leave behind.
"""

from __future__ import annotations

import datetime as _dt
import hashlib
import json
import os
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.relalg.errors import RecoveryError

__all__ = [
    "WriteAheadLog",
    "decode_row",
    "encode_row",
    "fingerprint_hash",
    "restore_state",
    "row_key",
    "snapshot_state",
    "state_fingerprint",
]

#: ``hook(label, count)`` — called after every write-path event.
WalHook = Callable[[str, int], None]


# --------------------------------------------------------------------------- #
# value encoding
# --------------------------------------------------------------------------- #
#
# Row values are the engine's storage scalars: str, int, float, bool, None
# and datetime.  Everything but datetime is JSON-native (NaN/Infinity use
# Python's non-strict JSON tokens; the log is produced and consumed by this
# module only); datetimes are tagged so they survive the round trip exactly
# (isoformat keeps microseconds and UTC offsets).


def _encode_value(value: Any) -> Any:
    if isinstance(value, _dt.datetime):
        return {"$dt": value.isoformat()}
    return value


def _decode_value(value: Any) -> Any:
    if isinstance(value, dict):
        return _dt.datetime.fromisoformat(value["$dt"])
    return value


def encode_row(row: Any) -> List[Any]:
    """Encode one row (any sequence of storage scalars) for the log."""
    return [_encode_value(value) for value in row]


def decode_row(row: List[Any]) -> Tuple[Any, ...]:
    """Decode one logged row back to the storage tuple."""
    return tuple(_decode_value(value) for value in row)


def row_key(row: Tuple[Any, ...]) -> Tuple[Tuple[str, str], ...]:
    """A canonical, hashable identity of one row image.

    Replaying a logged DELETE must match the *exact* stored rows the
    original run deleted — including ``NaN`` (never ``==`` itself) and
    ``-0.0`` (``==`` ``0.0`` but a different byte pattern) — so matching
    goes through ``repr`` per value rather than ``==``: by induction the
    replayed table holds bit-identical values to the original run, making
    repr-identity both exact and strictly stronger than equality.
    """
    return tuple((type(value).__name__, repr(value)) for value in row)


def _dump_record(record: Dict[str, Any]) -> bytes:
    return (json.dumps(record, separators=(",", ":")) + "\n").encode("utf-8")


# --------------------------------------------------------------------------- #
# the log file
# --------------------------------------------------------------------------- #


class WriteAheadLog:
    """The append-only log file plus its checkpoint sidecar.

    File management only — *what* to log and how to replay it is the
    database's job.  The file handle is unbuffered (``buffering=0``): every
    :meth:`append` is a write syscall, so the on-disk state at any hook
    event equals what an abrupt process death at that event would leave.
    """

    def __init__(self, path: str, hook: Optional[WalHook] = None) -> None:
        self.path = os.fspath(path)
        self.checkpoint_path = self.path + ".ckpt"
        self.hook = hook
        #: Write-path events so far (appends, fsyncs, checkpoint steps).
        self.events = 0
        #: Bytes of the current log generation, and how many are fsynced.
        self.size = 0
        self.bytes_fsynced = 0
        self._file: Optional[Any] = None

    # -- hook -------------------------------------------------------------------

    def _event(self, label: str) -> None:
        self.events += 1
        if self.hook is not None:
            self.hook(label, self.events)

    # -- appending --------------------------------------------------------------

    def open_for_append(self) -> None:
        self._file = open(self.path, "ab", buffering=0)
        self.size = self._file.seek(0, os.SEEK_END)
        self.bytes_fsynced = self.size

    def append(self, record: Dict[str, Any], label: str) -> None:
        """Append one record (one write syscall), then fire the hook."""
        if self._file is None:
            raise RecoveryError(f"write-ahead log {self.path!r} is not open")
        payload = _dump_record(record)
        self._file.write(payload)
        self.size += len(payload)
        self._event(f"append:{label}")

    def sync(self, label: str) -> None:
        """fsync the log — the durability point — then fire the hook."""
        if self._file is None:
            raise RecoveryError(f"write-ahead log {self.path!r} is not open")
        os.fsync(self._file.fileno())
        self.bytes_fsynced = self.size
        self._event(f"fsync:{label}")

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    # -- scanning ---------------------------------------------------------------

    def scan(self) -> Iterator[Tuple[Dict[str, Any], int]]:
        """Yield ``(record, end_offset)`` for every parseable line.

        Stops (without raising) at the first torn line — a trailing partial
        write from a crash; the caller truncates there.
        """
        if not os.path.exists(self.path):
            return
        offset = 0
        with open(self.path, "rb") as handle:
            for line in handle:
                if not line.endswith(b"\n"):
                    return
                try:
                    record = json.loads(line.decode("utf-8"))
                except (ValueError, UnicodeDecodeError):
                    return
                if not isinstance(record, dict) or "t" not in record:
                    return
                offset += len(line)
                yield record, offset

    def truncate(self, offset: int) -> None:
        """Discard everything after ``offset`` (uncommitted/torn tail)."""
        if os.path.exists(self.path) and os.path.getsize(self.path) > offset:
            with open(self.path, "rb+") as handle:
                handle.truncate(offset)

    # -- generations ------------------------------------------------------------

    def reset(self, generation: int) -> None:
        """Truncate the log and start a fresh generation (post-checkpoint)."""
        if self._file is not None:
            self._file.close()
        self._file = open(self.path, "wb", buffering=0)
        self.size = 0
        self.bytes_fsynced = 0
        self._event("truncate:log")
        self.append({"t": "log", "gen": generation}, "header")
        self.sync("header")

    # -- checkpoint sidecar -----------------------------------------------------

    def write_checkpoint(self, payload: Dict[str, Any]) -> None:
        """Atomically replace the checkpoint sidecar (tmp+fsync+rename)."""
        tmp = self.checkpoint_path + ".tmp"
        data = json.dumps(payload, separators=(",", ":")).encode("utf-8")
        with open(tmp, "wb", buffering=0) as handle:
            handle.write(data)
            self._event("append:ckpt-tmp")
            os.fsync(handle.fileno())
            self._event("fsync:ckpt-tmp")
        os.replace(tmp, self.checkpoint_path)
        self._event("rename:ckpt")
        directory = os.path.dirname(os.path.abspath(self.checkpoint_path))
        fd = os.open(directory, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)
        self._event("fsync:ckpt-dir")

    def load_checkpoint(self) -> Optional[Dict[str, Any]]:
        """The checkpoint payload, or ``None`` when none exists."""
        if not os.path.exists(self.checkpoint_path):
            return None
        with open(self.checkpoint_path, "rb") as handle:
            data = handle.read()
        try:
            payload = json.loads(data.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise RecoveryError(
                f"checkpoint {self.checkpoint_path!r} is unreadable: {exc}"
            ) from None
        if not isinstance(payload, dict) or "gen" not in payload:
            raise RecoveryError(
                f"checkpoint {self.checkpoint_path!r} has no generation marker"
            )
        return payload


# --------------------------------------------------------------------------- #
# catalog snapshots (checkpoint payloads)
# --------------------------------------------------------------------------- #


def snapshot_state(database, generation: int) -> Dict[str, Any]:
    """Serialise the whole catalog for a checkpoint.

    Raw row lists are kept **with tombstones** and the mutations counter is
    recorded, so a restore reproduces the storage layout — positions, index
    buckets, statistics — byte-for-byte, not merely the logical contents.
    """
    tables = []
    for table in database.tables.values():
        primary = {table.partition_column} if table.partition_column else set()
        tables.append(
            {
                "name": table.schema.name,
                "columns": [
                    [c.name, c.type.value, c.nullable, c.primary_key]
                    for c in table.schema.columns
                ],
                "n_partitions": table.n_partitions,
                "mutations": table.mutations,
                "indexes": [
                    [index.name, index.column, index.ordered]
                    for key, index in table.indexes.items()
                    if key not in primary
                ],
                "partitions": [
                    [
                        None if row is None else encode_row(row)
                        for row in partition.rows
                    ]
                    for partition in table.partitions
                ],
            }
        )
    return {"gen": generation, "tables": tables}


def restore_state(database, payload: Dict[str, Any]) -> None:
    """Rebuild the catalog of an (empty) database from a checkpoint payload.

    Index buckets are not stored — they are fully determined by the raw row
    lists (buckets hold ascending positions of live rows) and rebuilt here.
    """
    from repro.relalg.schema import Column, ColumnType, TableSchema

    if database.tables:
        raise RecoveryError(
            "checkpoint restore requires an empty catalog; the database "
            f"already has tables {sorted(database.tables)}"
        )
    for spec in payload["tables"]:
        schema = TableSchema(
            name=spec["name"],
            columns=[
                Column(
                    name=name,
                    type=ColumnType(type_name),
                    nullable=nullable,
                    primary_key=primary_key,
                )
                for name, type_name, nullable, primary_key in spec["columns"]
            ],
        )
        table = database.create_table(schema, n_partitions=spec["n_partitions"])
        for entry in spec["indexes"]:
            # Pre-ordered-index checkpoints carry 2-element entries.
            index_name, column = entry[0], entry[1]
            ordered = entry[2] if len(entry) > 2 else False
            table.create_index(index_name, column, ordered=ordered)
        for pid, raw_rows in enumerate(spec["partitions"]):
            partition = table.partitions[pid]
            partition.rows = [
                None if row is None else decode_row(row) for row in raw_rows
            ]
            partition.live_count = sum(
                1 for row in partition.rows if row is not None
            )
            for index in table.indexes.values():
                part = index.parts[pid]
                column_index = index.column_index
                for position, row in enumerate(partition.rows):
                    if row is not None:
                        part.add(row[column_index], position)
        table.mutations = spec["mutations"]


# --------------------------------------------------------------------------- #
# state fingerprints (the byte-identical contract, made checkable)
# --------------------------------------------------------------------------- #


def state_fingerprint(database) -> Dict[str, Any]:
    """The complete logical+physical state of a database, as plain data.

    Covers everything the durability contract promises byte-for-byte: table
    schemas, partition counts and assignment, raw row lists *including
    tombstone layout*, live counts, every index's buckets (keys sorted
    canonically — bucket *dict* order is unobservable, intra-bucket position
    order is observable and kept), and the :class:`TableStatistics` snapshot
    with the mutations counter.  Process-local identities (``Table.uid``,
    ``Partition.version``, the execution summary) are deliberately excluded:
    they describe the process, not the data.
    """
    tables: Dict[str, Any] = {}
    for key in sorted(database.tables):
        table = database.tables[key]
        statistics = table.statistics()
        tables[key] = {
            "schema": table.schema.sql(),
            "n_partitions": table.n_partitions,
            "partitions": [
                [
                    None if row is None else encode_row(row)
                    for row in partition.rows
                ]
                for partition in table.partitions
            ],
            "live_counts": [p.live_count for p in table.partitions],
            "indexes": {
                index_key: [
                    sorted(
                        (
                            (repr(value), list(positions))
                            for value, positions in part._buckets.items()
                        )
                    )
                    for part in index.parts
                ]
                for index_key, index in sorted(table.indexes.items())
            },
            "statistics": {
                "row_count": statistics.row_count,
                "partition_rows": statistics.partition_rows,
                "index_distinct": dict(sorted(statistics.index_distinct.items())),
                "mutations": statistics.mutations,
            },
        }
    return {"tables": tables}


def fingerprint_hash(fingerprint: Dict[str, Any]) -> str:
    """A stable hash of :func:`state_fingerprint` output (for set membership)."""
    canonical = json.dumps(fingerprint, sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
