"""Engine-invariant lint pass over the ``repro`` sources.

The engine's reliability story rests on a few repository-wide invariants that
ordinary tests cannot enforce (they are properties of the *source*, not of any
particular execution).  This tool walks the Python AST of every file under the
checked trees and reports violations:

``E100`` — bare ``assert`` outside tests.  Asserts vanish under ``python -O``
    and raise untyped ``AssertionError`` instead of the engine's typed error
    hierarchy; engine code must raise :class:`ExecutionError` (or a subclass)
    explicitly.

``E200`` — broad exception swallowing.  An ``except`` clause catching
    ``Exception``/``BaseException`` (or a bare ``except:``) whose handler body
    never re-raises can silently swallow :class:`ExecutionError` subclasses,
    turning typed engine failures into wrong answers.  Handlers that re-raise
    (any ``raise`` statement in the handler body) are fine.  Deliberate
    swallow sites annotate the ``except`` line with
    ``# lint: allow-broad-except`` and a rationale in surrounding comments.

``E300`` — wall-clock or randomness in ``relalg/``.  The relational engine
    must be deterministic and virtual-time only: ``time.time()``,
    ``time.monotonic()``, ``time.perf_counter()`` and any use of the
    ``random`` module inside ``src/repro/relalg`` break replay/differential
    testing and the simulated-cost model.

Run as ``python -m tools.lint_engine [paths...]`` (default: ``src/repro``).
Exit status 0 when clean, 1 when any violation is found.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterable, List, NamedTuple

ALLOW_BROAD_EXCEPT_PRAGMA = "lint: allow-broad-except"

_E300_TIME_CALLS = {"time", "monotonic", "perf_counter", "process_time"}


class Violation(NamedTuple):
    path: Path
    line: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.code} {self.message}"


def _is_test_path(path: Path) -> bool:
    parts = {part.lower() for part in path.parts}
    if "tests" in parts or "test" in parts:
        return True
    return path.name.startswith("test_") or path.name == "conftest.py"


def _is_relalg_path(path: Path) -> bool:
    return "relalg" in path.parts


def _catches_broadly(handler: ast.ExceptHandler) -> bool:
    """True for ``except:``, ``except Exception`` and ``except BaseException``
    (including tuple forms that contain either)."""
    broad = {"Exception", "BaseException"}

    def is_broad_name(node: ast.expr) -> bool:
        return isinstance(node, ast.Name) and node.id in broad

    if handler.type is None:
        return True
    if is_broad_name(handler.type):
        return True
    if isinstance(handler.type, ast.Tuple):
        return any(is_broad_name(element) for element in handler.type.elts)
    return False


def _handler_reraises(handler: ast.ExceptHandler) -> bool:
    """True when any statement inside the handler body is a ``raise``."""
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
    return False


def _line_has_pragma(source_lines: List[str], lineno: int) -> bool:
    if 1 <= lineno <= len(source_lines):
        return ALLOW_BROAD_EXCEPT_PRAGMA in source_lines[lineno - 1]
    return False


def _imported_random_aliases(tree: ast.Module) -> set:
    """Names bound to the ``random`` module or its members at import time."""
    aliases = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random" or alias.name.startswith("random."):
                    aliases.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            if node.module == "random":
                for alias in node.names:
                    aliases.add(alias.asname or alias.name)
    return aliases


def _lint_file(path: Path) -> List[Violation]:
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [Violation(path, exc.lineno or 0, "E000", f"syntax error: {exc.msg}")]
    source_lines = source.splitlines()
    violations: List[Violation] = []

    in_tests = _is_test_path(path)
    in_relalg = _is_relalg_path(path)
    random_aliases = _imported_random_aliases(tree) if in_relalg else set()

    for node in ast.walk(tree):
        if isinstance(node, ast.Assert) and not in_tests:
            violations.append(
                Violation(
                    path, node.lineno, "E100",
                    "bare assert in engine code (vanishes under -O; raise a "
                    "typed engine error instead)",
                )
            )
        elif isinstance(node, ast.ExceptHandler) and _catches_broadly(node):
            if _handler_reraises(node):
                continue
            if _line_has_pragma(source_lines, node.lineno):
                continue
            violations.append(
                Violation(
                    path, node.lineno, "E200",
                    "broad except swallows exceptions (may hide "
                    "ExecutionError subclasses); re-raise or annotate with "
                    f"'# {ALLOW_BROAD_EXCEPT_PRAGMA}'",
                )
            )
        elif in_relalg and isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "time"
                and func.attr in _E300_TIME_CALLS
            ):
                violations.append(
                    Violation(
                        path, node.lineno, "E300",
                        f"wall-clock call time.{func.attr}() in relalg/ "
                        "(engine must stay deterministic/virtual-time)",
                    )
                )
        if in_relalg and isinstance(node, ast.Name) and node.id in random_aliases:
            violations.append(
                Violation(
                    path, node.lineno, "E300",
                    "use of the random module in relalg/ (engine must stay "
                    "deterministic)",
                )
            )
    return violations


def _python_files(paths: Iterable[Path]) -> List[Path]:
    files: List[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    return files


def lint_paths(paths: Iterable[Path]) -> List[Violation]:
    violations: List[Violation] = []
    for path in _python_files(paths):
        violations.extend(_lint_file(path))
    return violations


def main(argv=None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    targets = [Path(arg) for arg in args] or [Path("src/repro")]
    missing = [target for target in targets if not target.exists()]
    if missing:
        for target in missing:
            print(f"lint_engine: path not found: {target}", file=sys.stderr)
        return 2
    violations = lint_paths(targets)
    for violation in violations:
        print(violation.render())
    checked = len(_python_files(targets))
    if violations:
        print(f"lint_engine: {len(violations)} violation(s) in {checked} file(s)")
        return 1
    print(f"lint_engine: clean ({checked} file(s) checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
