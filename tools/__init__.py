"""Repository tooling that is not part of the :mod:`repro` package.

Currently holds :mod:`tools.lint_engine`, the engine-invariant lint pass CI
runs over ``src/repro``.
"""
